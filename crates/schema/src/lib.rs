//! # legodb-schema
//!
//! The XML Query Algebra type system used by LegoDB (ICDE 2002, §2 and
//! Appendix B). XML Schemas are represented in the algebra's type notation:
//!
//! ```text
//! type Show = show [ @type[ String ], title[ String ], year[ Integer ],
//!                    Aka{1,10}, Review*, ( Movie | TV ) ]
//! ```
//!
//! This crate provides:
//!
//! - the type AST ([`Type`], [`NameTest`], [`ScalarKind`]) with the paper's
//!   statistics annotations (`String<#50,#34798>`, `Review*<#10>`);
//! - [`Schema`]: a named collection of type definitions with a root;
//! - a parser ([`parse_schema`]) and pretty-printer for the textual notation
//!   (they round-trip);
//! - a document validator ([`validate::validate`]) based on Brzozowski
//!   derivatives over the tree-regular content models — used both to check
//!   data and to *test that schema transformations preserve semantics*;
//! - a random document sampler ([`gen::generate`]) that produces documents
//!   valid under a schema, honoring cardinality annotations.
//!
//! ```
//! use legodb_schema::{parse_schema, validate::validate};
//!
//! let schema = parse_schema(
//!     "type Show = show [ title[ String ], year[ Integer ], Aka{0,*} ]
//!      type Aka = aka[ String ]",
//! ).unwrap();
//! let doc = legodb_xml::parse(
//!     "<show><title>The Fugitive</title><year>1993</year><aka>Le Fugitif</aka></show>",
//! ).unwrap();
//! assert!(validate(&schema, &doc).is_ok());
//! ```

#![forbid(unsafe_code)]

pub mod gen;
pub mod mega;
pub mod name;
pub mod parse;
pub mod print;
pub mod schema;
pub mod ty;
pub mod validate;

pub use mega::{mega_schema, MegaConfig, MegaSchema, MegaType};
pub use name::{NameTest, TypeName};
pub use parse::{parse_schema, parse_schema_with_limits, SchemaLimits, SchemaParseError};
pub use schema::{Schema, SchemaError};
pub use ty::{Occurs, ScalarKind, ScalarStats, Type};
