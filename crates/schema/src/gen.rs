//! Random generation of documents *valid under a schema*.
//!
//! Used by the IMDB data generator (`legodb-imdb`) to synthesize datasets
//! matching the paper's Appendix A statistics (the real IMDB data is
//! proprietary), and by property tests to check that schema transformations
//! preserve document semantics: every document sampled from a schema must
//! validate against every transformation of it.

use crate::name::{NameTest, TypeName};
use crate::schema::Schema;
use crate::ty::{ScalarKind, ScalarStats, Type};
use legodb_util::Rng;
use legodb_xml::{Attribute, Document, Element, Node};

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Beyond this element depth, repetitions use their minimum count and
    /// unions pick their least-recursive alternative (terminates recursive
    /// schemas such as `AnyElement`).
    pub max_depth: usize,
    /// Cap applied to unbounded repetitions when no `<#count>` annotation
    /// is present.
    pub default_unbounded_max: u32,
    /// Names to use when a wildcard (`~` / `~!...`) element must be
    /// emitted, with selection weights. Falls back to `any0..any3` when
    /// empty (after exclusion filtering).
    pub wildcard_names: Vec<(String, f64)>,
    /// Default string length when no `<#size>` annotation is present.
    pub default_string_len: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 24,
            default_unbounded_max: 3,
            wildcard_names: Vec::new(),
            default_string_len: 8,
        }
    }
}

/// Generate one random document valid under `schema`.
///
/// The schema root must be (or resolve to) a single element type.
pub fn generate(schema: &Schema, rng: &mut impl Rng, config: &GenConfig) -> Document {
    let root_ty = schema.root_type();
    let mut items = Vec::new();
    let mut gen = Gen {
        schema,
        rng,
        config,
    };
    gen.emit(root_ty, 0, &mut items);
    let root = items
        .into_iter()
        .find_map(|i| match i {
            Item::Child(Node::Element(e)) => Some(e),
            _ => None,
        })
        .unwrap_or_else(|| Element::new("empty"));
    Document::new(root)
}

enum Item {
    Attr(Attribute),
    Child(Node),
}

struct Gen<'a, R: Rng> {
    schema: &'a Schema,
    rng: &'a mut R,
    config: &'a GenConfig,
}

impl<R: Rng> Gen<'_, R> {
    /// Emit the items produced by one type occurrence.
    fn emit(&mut self, ty: &Type, depth: usize, out: &mut Vec<Item>) {
        match ty {
            Type::Empty => {}
            Type::Scalar { kind, stats } => {
                let text = self.scalar_value(*kind, stats);
                if !text.is_empty() {
                    out.push(Item::Child(Node::Text(text)));
                }
            }
            Type::Attribute { name, content } => {
                let value = self.scalar_value_of(content);
                out.push(Item::Attr(Attribute {
                    name: name.clone(),
                    value,
                }));
            }
            Type::Element { name, content } => {
                let tag = self.pick_name(name);
                let mut items = Vec::new();
                self.emit(content, depth + 1, &mut items);
                let mut e = Element::new(tag);
                for item in items {
                    match item {
                        Item::Attr(a) => {
                            if e.attribute(&a.name).is_none() {
                                e.attributes.push(a);
                            }
                        }
                        Item::Child(n) => e.children.push(n),
                    }
                }
                out.push(Item::Child(Node::Element(e)));
            }
            Type::Seq(items) => {
                for item in items {
                    self.emit(item, depth, out);
                }
            }
            Type::Choice(alternatives) => {
                let pick = if depth > self.config.max_depth {
                    least_recursive(alternatives)
                } else {
                    self.rng.gen_range(0..alternatives.len())
                };
                self.emit(&alternatives[pick], depth, out);
            }
            Type::Rep {
                inner,
                occurs,
                avg_count,
            } => {
                let count = self.sample_count(occurs.min, occurs.max, *avg_count, depth);
                for _ in 0..count {
                    self.emit(inner, depth, out);
                }
            }
            Type::Ref(name) => {
                if let Some(def) = self.schema.get(name) {
                    self.emit(def, depth, out);
                }
            }
        }
    }

    fn sample_count(&mut self, min: u32, max: Option<u32>, avg: Option<f64>, depth: usize) -> u32 {
        if depth > self.config.max_depth {
            return min;
        }
        let hi = match max {
            Some(m) => m,
            None => match avg {
                // Spread uniformly on [0, 2·avg] so the mean tracks the
                // annotation; clamp below by min.
                Some(a) => ((2.0 * a).ceil() as u32).max(min),
                None => min + self.config.default_unbounded_max,
            },
        };
        if hi <= min {
            min
        } else {
            self.rng.gen_range(min..=hi)
        }
    }

    fn scalar_value_of(&mut self, ty: &Type) -> String {
        match ty {
            Type::Scalar { kind, stats } => self.scalar_value(*kind, stats),
            Type::Choice(alts) if !alts.is_empty() => {
                let i = self.rng.gen_range(0..alts.len());
                self.scalar_value_of(&alts[i])
            }
            Type::Ref(name) => match self.schema.get(name) {
                Some(def) => self.scalar_value_of(def),
                None => String::new(),
            },
            _ => String::new(),
        }
    }

    fn scalar_value(&mut self, kind: ScalarKind, stats: &ScalarStats) -> String {
        match kind {
            ScalarKind::Integer => {
                let lo = stats.min.unwrap_or(0);
                let hi = stats.max.unwrap_or(lo + 999).max(lo);
                // Honor the distinct count by quantizing the range.
                match stats.distinct {
                    Some(d) if d > 0 && (hi - lo) as u64 >= d => {
                        let step = ((hi - lo) as u64 / d).max(1);
                        let k = self.rng.gen_range(0..d);
                        (lo + (k * step) as i64).to_string()
                    }
                    _ => self.rng.gen_range(lo..=hi).to_string(),
                }
            }
            ScalarKind::String => {
                let len = stats
                    .size
                    .map(|s| s.round() as usize)
                    .unwrap_or(self.config.default_string_len);
                match stats.distinct {
                    Some(d) if d > 0 => {
                        let k = self.rng.gen_range(0..d);
                        let mut s = format!("v{k}_");
                        self.pad_random(&mut s, len);
                        s
                    }
                    _ => {
                        let mut s = String::new();
                        self.pad_random(&mut s, len.max(1));
                        s
                    }
                }
            }
        }
    }

    fn pad_random(&mut self, s: &mut String, len: usize) {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
        while s.len() < len {
            let i = self.rng.gen_range(0..ALPHABET.len());
            s.push(ALPHABET[i] as char);
        }
        s.truncate(len);
    }

    fn pick_name(&mut self, test: &NameTest) -> String {
        match test {
            NameTest::Name(n) => n.clone(),
            NameTest::Any | NameTest::AnyExcept(_) => {
                let candidates: Vec<(String, f64)> = if self.config.wildcard_names.is_empty() {
                    (0..4).map(|i| (format!("any{i}"), 1.0)).collect()
                } else {
                    self.config.wildcard_names.clone()
                };
                let allowed: Vec<&(String, f64)> =
                    candidates.iter().filter(|(n, _)| test.matches(n)).collect();
                if allowed.is_empty() {
                    return "anyx".to_string();
                }
                let total: f64 = allowed.iter().map(|(_, w)| w).sum();
                let mut pick = self.rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
                for (name, w) in &allowed {
                    if pick < *w {
                        return name.clone();
                    }
                    pick -= w;
                }
                // lint: allow(no-unwrap-in-lib) — allowed is non-empty — checked before the weighted pick
                allowed.last().expect("non-empty checked").0.clone()
            }
        }
    }
}

/// Index of the alternative least likely to recurse: prefers alternatives
/// without type references.
fn least_recursive(alternatives: &[Type]) -> usize {
    alternatives
        .iter()
        .position(|t| {
            let mut has_ref = false;
            t.visit(&mut |n| {
                if matches!(n, Type::Ref(_)) {
                    has_ref = true;
                }
            });
            !has_ref
        })
        .unwrap_or(0)
}

/// Convenience: the `TypeName`-keyed schema lookup used in tests.
pub fn generate_many(
    schema: &Schema,
    rng: &mut impl Rng,
    config: &GenConfig,
    n: usize,
) -> Vec<Document> {
    (0..n).map(|_| generate(schema, rng, config)).collect()
}

/// Re-exported for callers that key generation by type.
pub type Name = TypeName;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_schema;
    use crate::validate::validate;
    use legodb_util::StdRng;

    fn show_schema() -> Schema {
        parse_schema(
            "type IMDB = imdb[ Show{0,*}<#3> ]
             type Show = show [ @type[ String ], title[ String<#12,#40> ],
                                year[ Integer<#4,#1800,#2100,#300> ],
                                Aka{1,10}, Review*<#2>, ( Movie | TV ) ]
             type Aka = aka[ String ]
             type Review = review[ ~[ String ] ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], description[ String ], Episode{0,*}
             type Episode = episode[ name[ String ], guest_director[ String ] ]",
        )
        .unwrap()
    }

    #[test]
    fn generated_documents_validate() {
        let schema = show_schema();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..50 {
            let doc = generate(&schema, &mut rng, &GenConfig::default());
            assert!(
                validate(&schema, &doc).is_ok(),
                "document {i} failed validation:\n{}",
                doc.to_xml_pretty()
            );
        }
    }

    #[test]
    fn recursive_schemas_terminate() {
        let schema = parse_schema("type AnyElement = ~[ (AnyElement | String)* ]").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let config = GenConfig {
            max_depth: 6,
            ..GenConfig::default()
        };
        for _ in 0..20 {
            let doc = generate(&schema, &mut rng, &config);
            assert!(validate(&schema, &doc).is_ok());
        }
    }

    #[test]
    fn respects_bounded_occurrences() {
        let schema = parse_schema("type T = t[ Aka{2,4} ]\ntype Aka = aka[ String ]").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let doc = generate(&schema, &mut rng, &GenConfig::default());
            let n = doc.root.children_named("aka").count();
            assert!((2..=4).contains(&n), "got {n} akas");
        }
    }

    #[test]
    fn integer_values_respect_min_max() {
        let schema = parse_schema("type T = t[ year[ Integer<#4,#1990,#1999,#10> ] ]").unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let doc = generate(&schema, &mut rng, &GenConfig::default());
            let y: i64 = doc
                .root
                .first_child("year")
                .unwrap()
                .text()
                .parse()
                .unwrap();
            assert!((1990..=1999).contains(&y));
        }
    }

    #[test]
    fn wildcard_names_come_from_config() {
        let schema = parse_schema("type R = review[ ~[ String ]+ ]").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let config = GenConfig {
            wildcard_names: vec![("nyt".into(), 1.0), ("suntimes".into(), 1.0)],
            ..GenConfig::default()
        };
        let doc = generate(&schema, &mut rng, &config);
        for child in doc.root.child_elements() {
            assert!(child.name == "nyt" || child.name == "suntimes");
        }
    }

    #[test]
    fn any_except_never_picks_excluded() {
        let schema = parse_schema("type R = review[ ~!nyt[ String ]{3,6} ]").unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let config = GenConfig {
            wildcard_names: vec![("nyt".into(), 5.0), ("suntimes".into(), 1.0)],
            ..GenConfig::default()
        };
        for _ in 0..10 {
            let doc = generate(&schema, &mut rng, &config);
            assert!(doc.root.child_elements().all(|e| e.name != "nyt"));
        }
    }

    #[test]
    fn avg_count_annotation_drives_unbounded_reps() {
        let schema = parse_schema("type T = t[ Aka{0,*}<#10> ]\ntype Aka = aka[ String ]").unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let total: usize = (0..200)
            .map(|_| {
                generate(&schema, &mut rng, &GenConfig::default())
                    .root
                    .children_named("aka")
                    .count()
            })
            .sum();
        let mean = total as f64 / 200.0;
        assert!(
            (7.0..=13.0).contains(&mean),
            "mean {mean} should be near 10"
        );
    }
}
