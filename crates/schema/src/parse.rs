//! Parser for the textual type-algebra notation used throughout the paper:
//!
//! ```text
//! type Show = show [ @type[ String ], title[ String<#50,#34798> ],
//!                    year[ Integer<#4,#1800,#2100,#300> ],
//!                    Aka{1,10}, Review*<#10>, ( Movie | TV ) ]
//! ```
//!
//! Grammar (statistics annotations `<#...>` are optional everywhere):
//!
//! ```text
//! schema  := ("type" NAME "=" type)+
//! type    := seq ("|" seq)*
//! seq     := postfix ("," postfix)*
//! postfix := primary ( "*" | "+" | "?" | "{" INT "," (INT|"*") "}" )? stats?
//! primary := "(" type ")"
//!          | "@" NAME "[" type "]"
//!          | "String" stats? | "Integer" stats?
//!          | ("~" ("!" NAME ("," NAME)*)?) "[" type "]"
//!          | NAME "[" type "]"          -- element
//!          | NAME                       -- type reference
//! stats   := "<" "#" NUM ("," "#" NUM)* ">"
//! ```
//!
//! `//` starts a line comment. An identifier followed by `[` is an element;
//! otherwise it is a type reference (the paper's convention: lowercase tag
//! names, capitalized type names — but case is not enforced).

use crate::name::{NameTest, TypeName};
use crate::schema::{Schema, SchemaError};
use crate::ty::{Occurs, ScalarKind, ScalarStats, Type};
use std::fmt;

/// Hard input limits for the schema parser: nested type expressions are
/// parsed by recursive descent, so depth must be bounded to keep hostile
/// inputs from overflowing the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemaLimits {
    /// Maximum nesting depth of type expressions.
    pub max_depth: usize,
    /// Maximum input length in bytes (checked before parsing starts).
    pub max_input_bytes: usize,
}

impl Default for SchemaLimits {
    fn default() -> Self {
        SchemaLimits {
            max_depth: 128,
            max_input_bytes: 64 << 20,
        }
    }
}

/// An error from [`parse_schema`].
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaParseError {
    /// Lexical or syntactic failure, with a byte offset and message.
    Syntax { offset: usize, message: String },
    /// The declarations parsed but the schema is not well-formed.
    Schema(SchemaError),
    /// Type expressions nested deeper than the configured limit.
    TooDeep { offset: usize, limit: usize },
    /// The input is larger than the configured byte limit.
    InputTooLarge { limit: usize, actual: usize },
}

impl fmt::Display for SchemaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaParseError::Syntax { offset, message } => {
                write!(f, "schema syntax error at byte {offset}: {message}")
            }
            SchemaParseError::Schema(e) => write!(f, "schema error: {e}"),
            SchemaParseError::TooDeep { offset, limit } => {
                write!(
                    f,
                    "schema type nesting at byte {offset} exceeds the depth limit of {limit}"
                )
            }
            SchemaParseError::InputTooLarge { limit, actual } => {
                write!(
                    f,
                    "schema input of {actual} bytes exceeds the limit of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for SchemaParseError {}

impl From<SchemaError> for SchemaParseError {
    fn from(e: SchemaError) -> Self {
        SchemaParseError::Schema(e)
    }
}

/// Parse a schema in the algebra notation under the default
/// [`SchemaLimits`]. The first declared type is the root.
pub fn parse_schema(src: &str) -> Result<Schema, SchemaParseError> {
    parse_schema_with_limits(src, &SchemaLimits::default())
}

/// Parse a schema under explicit [`SchemaLimits`].
pub fn parse_schema_with_limits(
    src: &str,
    limits: &SchemaLimits,
) -> Result<Schema, SchemaParseError> {
    let mut p = P::new(src, *limits)?;
    let mut defs = Vec::new();
    p.ws();
    while !p.eof() {
        p.keyword("type")?;
        let name = p.ident()?;
        p.token("=")?;
        let ty = p.parse_type()?;
        defs.push((TypeName::new(name), ty));
        p.ws();
    }
    Ok(Schema::new(defs)?)
}

/// Parse a single type expression (without the `type X =` header). Useful
/// in tests and for building types programmatically from snippets.
pub fn parse_type(src: &str) -> Result<Type, SchemaParseError> {
    let mut p = P::new(src, SchemaLimits::default())?;
    let t = p.parse_type()?;
    p.ws();
    if !p.eof() {
        return Err(p.err("trailing input after type expression"));
    }
    Ok(t)
}

struct P<'a> {
    src: &'a str,
    pos: usize,
    limits: SchemaLimits,
    depth: usize,
}

impl<'a> P<'a> {
    fn new(src: &'a str, limits: SchemaLimits) -> Result<Self, SchemaParseError> {
        if src.len() > limits.max_input_bytes {
            return Err(SchemaParseError::InputTooLarge {
                limit: limits.max_input_bytes,
                actual: src.len(),
            });
        }
        Ok(P {
            src,
            pos: 0,
            limits,
            depth: 0,
        })
    }

    fn err(&self, message: impl Into<String>) -> SchemaParseError {
        SchemaParseError::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn ws(&mut self) {
        loop {
            let r = self.rest();
            if let Some(stripped) = r.strip_prefix("//") {
                let line_len = stripped.find('\n').map(|i| i + 3).unwrap_or(r.len());
                self.pos += line_len.min(r.len());
                continue;
            }
            match r.chars().next() {
                Some(c) if c.is_whitespace() => self.pos += c.len_utf8(),
                _ => return,
            }
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn token(&mut self, s: &str) -> Result<(), SchemaParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    /// Match a keyword: the literal must not be followed by a name char.
    fn keyword(&mut self, kw: &str) -> Result<(), SchemaParseError> {
        self.ws();
        let r = self.rest();
        if r.starts_with(kw) && !r[kw.len()..].starts_with(is_name_char) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, SchemaParseError> {
        self.ws();
        let r = self.rest();
        let end = r.find(|c: char| !is_name_char(c)).unwrap_or(r.len());
        if end == 0 || r.starts_with(|c: char| c.is_ascii_digit()) {
            return Err(self.err("expected an identifier"));
        }
        let name = r[..end].to_string();
        self.pos += end;
        Ok(name)
    }

    fn number_u32(&mut self) -> Result<u32, SchemaParseError> {
        self.ws();
        let r = self.rest();
        let end = r.find(|c: char| !c.is_ascii_digit()).unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("expected a number"));
        }
        let n = r[..end]
            .parse::<u32>()
            .map_err(|e| self.err(format!("bad number: {e}")))?;
        self.pos += end;
        Ok(n)
    }

    /// A (possibly negative, possibly fractional) numeric literal for stats.
    fn number_f64(&mut self) -> Result<f64, SchemaParseError> {
        self.ws();
        let r = self.rest();
        let end = r
            .char_indices()
            .find(|&(i, c)| !(c.is_ascii_digit() || c == '.' || (c == '-' && i == 0)))
            .map(|(i, _)| i)
            .unwrap_or(r.len());
        if end == 0 {
            return Err(self.err("expected a number"));
        }
        let n = r[..end]
            .parse::<f64>()
            .map_err(|e| self.err(format!("bad number: {e}")))?;
        self.pos += end;
        Ok(n)
    }

    fn parse_type(&mut self) -> Result<Type, SchemaParseError> {
        // All recursion (parens, element/attribute/wildcard content)
        // funnels back through parse_type, so depth is enforced here.
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return Err(SchemaParseError::TooDeep {
                offset: self.pos,
                limit: self.limits.max_depth,
            });
        }
        let mut alternatives = vec![self.parse_seq()?];
        while self.eat("|") {
            alternatives.push(self.parse_seq()?);
        }
        self.depth -= 1;
        Ok(Type::choice(alternatives))
    }

    fn parse_seq(&mut self) -> Result<Type, SchemaParseError> {
        let mut items = vec![self.parse_postfix()?];
        while self.eat(",") {
            items.push(self.parse_postfix()?);
        }
        Ok(Type::seq(items))
    }

    fn parse_postfix(&mut self) -> Result<Type, SchemaParseError> {
        let base = self.parse_primary()?;
        let occurs = if self.eat("*") {
            Some(Occurs::STAR)
        } else if self.eat("+") {
            Some(Occurs::PLUS)
        } else if self.eat("?") {
            Some(Occurs::OPT)
        } else if self.eat("{") {
            let min = self.number_u32()?;
            self.token(",")?;
            let max = if self.eat("*") {
                None
            } else {
                Some(self.number_u32()?)
            };
            self.token("}")?;
            Some(Occurs::new(min, max))
        } else {
            None
        };
        match occurs {
            None => Ok(base),
            Some(occurs) => {
                let avg_count = match self.parse_stats_numbers()? {
                    Some(nums) => nums.first().copied(),
                    None => None,
                };
                Ok(Type::rep_with_count(base, occurs, avg_count))
            }
        }
    }

    /// Parse a `<#n,#m,...>` annotation, if present.
    fn parse_stats_numbers(&mut self) -> Result<Option<Vec<f64>>, SchemaParseError> {
        self.ws();
        if !self.rest().starts_with("<#") {
            return Ok(None);
        }
        self.token("<")?;
        let mut nums = Vec::new();
        loop {
            self.token("#")?;
            nums.push(self.number_f64()?);
            if !self.eat(",") {
                break;
            }
        }
        self.token(">")?;
        Ok(Some(nums))
    }

    fn parse_primary(&mut self) -> Result<Type, SchemaParseError> {
        self.ws();
        match self.peek() {
            Some('(') => {
                self.token("(")?;
                if self.eat(")") {
                    return Ok(Type::Empty);
                }
                let t = self.parse_type()?;
                self.token(")")?;
                Ok(t)
            }
            Some('@') => {
                self.token("@")?;
                let name = self.ident()?;
                self.token("[")?;
                let content = self.parse_type()?;
                self.token("]")?;
                Ok(Type::attribute(name, content))
            }
            Some('~') => {
                self.token("~")?;
                let name = if self.eat("!") {
                    let mut excluded = vec![self.ident()?];
                    while self.eat(",") {
                        excluded.push(self.ident()?);
                    }
                    NameTest::AnyExcept(excluded)
                } else {
                    NameTest::Any
                };
                self.token("[")?;
                let content = self.parse_type()?;
                self.token("]")?;
                Ok(Type::Element {
                    name,
                    content: Box::new(content),
                })
            }
            Some(c) if is_name_char(c) && !c.is_ascii_digit() => {
                let name = self.ident()?;
                match name.as_str() {
                    "String" | "Integer" => {
                        let kind = if name == "String" {
                            ScalarKind::String
                        } else {
                            ScalarKind::Integer
                        };
                        let stats = self.parse_scalar_stats(kind)?;
                        Ok(Type::Scalar { kind, stats })
                    }
                    _ => {
                        if self.eat("[") {
                            let content = self.parse_type()?;
                            self.token("]")?;
                            Ok(Type::element(name, content))
                        } else {
                            Ok(Type::reference(name))
                        }
                    }
                }
            }
            other => Err(self.err(format!("unexpected {other:?} at start of a type"))),
        }
    }

    /// Positional scalar annotations. `String<#size>` or
    /// `String<#size,#distincts>`; `Integer<#size>`, `Integer<#size,#min,#max,#distincts>`.
    fn parse_scalar_stats(&mut self, kind: ScalarKind) -> Result<ScalarStats, SchemaParseError> {
        let Some(nums) = self.parse_stats_numbers()? else {
            return Ok(ScalarStats::none());
        };
        let mut stats = ScalarStats::none();
        match kind {
            ScalarKind::String => {
                stats.size = nums.first().copied();
                stats.distinct = nums.get(1).map(|&d| d as u64);
            }
            ScalarKind::Integer => {
                stats.size = nums.first().copied();
                stats.min = nums.get(1).map(|&m| m as i64);
                stats.max = nums.get(2).map(|&m| m as i64);
                stats.distinct = nums.get(3).map(|&d| d as u64);
            }
        }
        Ok(stats)
    }
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_show_type() {
        let schema = parse_schema(
            "type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                Aka{1,10}, Review*, ( Movie | TV ) ]
             type Aka = aka[ String ]
             type Review = review[ ~[ String ] ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], description[ String ],
                       episode[ name[ String ], guest_director[ String ] ]*",
        )
        .unwrap();
        assert_eq!(schema.root().as_str(), "Show");
        assert_eq!(schema.len(), 5);
        let show = schema.get_str("Show").unwrap();
        let Type::Element { name, content } = show else {
            panic!("Show should be an element")
        };
        assert_eq!(name.literal(), Some("show"));
        let items = content.seq_items();
        assert_eq!(items.len(), 6);
        assert!(matches!(&items[0], Type::Attribute { name, .. } if name == "type"));
        assert!(matches!(&items[3], Type::Rep { occurs, .. }
            if occurs.min == 1 && occurs.max == Some(10)));
        assert!(matches!(&items[5], Type::Choice(alts) if alts.len() == 2));
    }

    #[test]
    fn parses_scalar_statistics() {
        let t = parse_type("year[ Integer<#4,#1800,#2100,#300> ]").unwrap();
        let Type::Element { content, .. } = t else {
            panic!()
        };
        let Type::Scalar {
            kind: ScalarKind::Integer,
            stats,
        } = *content
        else {
            panic!()
        };
        assert_eq!(stats.size, Some(4.0));
        assert_eq!(stats.min, Some(1800));
        assert_eq!(stats.max, Some(2100));
        assert_eq!(stats.distinct, Some(300));
    }

    #[test]
    fn parses_string_statistics() {
        let t = parse_type("String<#50,#34798>").unwrap();
        let Type::Scalar {
            kind: ScalarKind::String,
            stats,
        } = t
        else {
            panic!()
        };
        assert_eq!(stats.size, Some(50.0));
        assert_eq!(stats.distinct, Some(34798));
    }

    #[test]
    fn parses_repetition_count_annotation() {
        let t = parse_type("Review*<#10>").unwrap();
        let Type::Rep { avg_count, .. } = t else {
            panic!()
        };
        assert_eq!(avg_count, Some(10.0));
    }

    #[test]
    fn parses_occurrence_shorthands() {
        let t = parse_type("A?").unwrap();
        assert!(matches!(t, Type::Rep { occurs, .. } if occurs == Occurs::OPT));
        let t = parse_type("a[ String ]?").unwrap();
        assert!(matches!(t, Type::Rep { occurs, .. } if occurs == Occurs::OPT));
        let t = parse_type("a[ String ]+").unwrap();
        assert!(matches!(t, Type::Rep { occurs, .. } if occurs == Occurs::PLUS));
        let t = parse_type("a[ String ]{2,7}").unwrap();
        assert!(matches!(t, Type::Rep { occurs, .. } if occurs == Occurs::new(2, Some(7))));
        let t = parse_type("a[ String ]{0,*}").unwrap();
        assert!(matches!(t, Type::Rep { occurs, .. } if occurs == Occurs::STAR));
    }

    #[test]
    fn parses_wildcards() {
        let t = parse_type("~[ String ]").unwrap();
        assert!(matches!(
            t,
            Type::Element {
                name: NameTest::Any,
                ..
            }
        ));
        let t = parse_type("~!nyt[ String ]").unwrap();
        assert!(matches!(t, Type::Element { name: NameTest::AnyExcept(ex), .. } if ex == ["nyt"]));
        let t = parse_type("~!nyt,suntimes[ String ]").unwrap();
        assert!(matches!(t, Type::Element { name: NameTest::AnyExcept(ex), .. } if ex.len() == 2));
    }

    #[test]
    fn union_binds_looser_than_sequence() {
        let t = parse_type("a[()], b[()] | c[()]").unwrap();
        let Type::Choice(alts) = t else {
            panic!("expected a choice")
        };
        assert_eq!(alts.len(), 2);
        assert!(matches!(&alts[0], Type::Seq(items) if items.len() == 2));
    }

    #[test]
    fn parens_group_unions() {
        let t = parse_type("a[()], (b[()] | c[()])").unwrap();
        let Type::Seq(items) = t else {
            panic!("expected a sequence")
        };
        assert!(matches!(&items[1], Type::Choice(_)));
    }

    #[test]
    fn line_comments_are_skipped() {
        let schema = parse_schema(
            "// the root type\ntype A = a[ String ] // trailing comment\ntype B = b[ () ]",
        );
        // B is unreachable from A but still well-formed.
        assert_eq!(schema.unwrap().len(), 2);
    }

    #[test]
    fn empty_content_parses() {
        let t = parse_type("a[ () ]").unwrap();
        assert!(matches!(t, Type::Element { content, .. } if *content == Type::Empty));
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        let err = parse_schema("type = a[ String ]").unwrap_err();
        assert!(matches!(err, SchemaParseError::Syntax { .. }));
        let err = parse_type("a[ String").unwrap_err();
        assert!(matches!(err, SchemaParseError::Syntax { .. }));
    }

    #[test]
    fn deep_type_nesting_is_rejected_not_overflowed() {
        let depth = 10_000;
        let src = format!("type A = {}(){}", "a[ ".repeat(depth), " ]".repeat(depth));
        let err = parse_schema(&src).unwrap_err();
        assert!(matches!(err, SchemaParseError::TooDeep { limit: 128, .. }));
    }

    #[test]
    fn nesting_under_the_limit_parses() {
        let limits = SchemaLimits::default();
        // Each `a[ ... ]` level consumes one parse_type frame; stay a
        // frame under the limit to cover the outer declaration.
        let depth = limits.max_depth - 1;
        let src = format!("type A = {}(){}", "a[ ".repeat(depth), " ]".repeat(depth));
        assert!(parse_schema_with_limits(&src, &limits).is_ok());
    }

    #[test]
    fn oversized_input_is_rejected_upfront() {
        let limits = SchemaLimits {
            max_input_bytes: 32,
            ..Default::default()
        };
        let src = format!("type A = a[ String ] // {}", "x".repeat(64));
        let err = parse_schema_with_limits(&src, &limits).unwrap_err();
        assert!(matches!(
            err,
            SchemaParseError::InputTooLarge { limit: 32, .. }
        ));
    }

    #[test]
    fn dangling_refs_become_schema_errors() {
        let err = parse_schema("type A = a[ B ]").unwrap_err();
        assert!(matches!(
            err,
            SchemaParseError::Schema(SchemaError::UndefinedType { .. })
        ));
    }
}
