//! Pretty-printing of types and schemas back into the algebra notation.
//! `parse_schema(schema.to_string())` reproduces the schema.

use crate::schema::Schema;
use crate::ty::{ScalarKind, ScalarStats, Type};
use std::fmt;

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, ty) in self.iter() {
            writeln!(f, "type {name} = {ty}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_type(f, self, Prec::Top)
    }
}

/// Operator precedence for parenthesization: union is loosest, then
/// sequence, then postfix repetition.
#[derive(PartialEq, PartialOrd, Clone, Copy)]
enum Prec {
    Top,
    Seq,
    Postfix,
}

fn write_type(f: &mut fmt::Formatter<'_>, t: &Type, prec: Prec) -> fmt::Result {
    match t {
        Type::Empty => f.write_str("()"),
        Type::Scalar { kind, stats } => {
            match kind {
                ScalarKind::String => f.write_str("String")?,
                ScalarKind::Integer => f.write_str("Integer")?,
            }
            write_scalar_stats(f, *kind, stats)
        }
        Type::Attribute { name, content } => {
            write!(f, "@{name}[ ")?;
            write_type(f, content, Prec::Top)?;
            f.write_str(" ]")
        }
        Type::Element { name, content } => {
            write!(f, "{name}[ ")?;
            write_type(f, content, Prec::Top)?;
            f.write_str(" ]")
        }
        Type::Seq(items) => {
            let parens = prec > Prec::Seq;
            if parens {
                f.write_str("(")?;
            }
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write_type(f, item, Prec::Postfix)?;
            }
            if parens {
                f.write_str(")")?;
            }
            Ok(())
        }
        Type::Choice(items) => {
            let parens = prec > Prec::Top;
            if parens {
                f.write_str("(")?;
            }
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(" | ")?;
                }
                write_type(f, item, Prec::Seq)?;
            }
            if parens {
                f.write_str(")")?;
            }
            Ok(())
        }
        Type::Rep {
            inner,
            occurs,
            avg_count,
        } => {
            write_type(f, inner, Prec::Postfix)?;
            match (occurs.min, occurs.max) {
                (0, None) => f.write_str("*")?,
                (1, None) => f.write_str("+")?,
                (0, Some(1)) => f.write_str("?")?,
                (min, None) => write!(f, "{{{min},*}}")?,
                (min, Some(max)) => write!(f, "{{{min},{max}}}")?,
            }
            if let Some(c) = avg_count {
                write!(f, "<#{}>", fmt_num(*c))?;
            }
            Ok(())
        }
        Type::Ref(name) => write!(f, "{name}"),
    }
}

fn write_scalar_stats(
    f: &mut fmt::Formatter<'_>,
    kind: ScalarKind,
    stats: &ScalarStats,
) -> fmt::Result {
    if stats.is_empty() {
        return Ok(());
    }
    // Positional form matching the parser: String<#size,#distinct>,
    // Integer<#size,#min,#max,#distinct>. Missing leading fields print as 0.
    let nums: Vec<f64> = match kind {
        ScalarKind::String => {
            let mut v = vec![stats.size.unwrap_or(0.0)];
            if let Some(d) = stats.distinct {
                v.push(d as f64);
            }
            v
        }
        ScalarKind::Integer => {
            let mut v = vec![stats.size.unwrap_or(4.0)];
            if stats.min.is_some() || stats.max.is_some() || stats.distinct.is_some() {
                v.push(stats.min.unwrap_or(i64::MIN >> 32) as f64);
                v.push(stats.max.unwrap_or(i64::MAX >> 32) as f64);
                v.push(stats.distinct.unwrap_or(0) as f64);
            }
            v
        }
    };
    f.write_str("<")?;
    for (i, n) in nums.iter().enumerate() {
        if i > 0 {
            f.write_str(",")?;
        }
        write!(f, "#{}", fmt_num(*n))?;
    }
    f.write_str(">")
}

/// Print a float without a trailing `.0` when integral.
fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use crate::parse::{parse_schema, parse_type};

    /// Parse → print → parse must reproduce the same AST.
    fn round_trip_type(src: &str) {
        let t1 = parse_type(src).unwrap();
        let printed = t1.to_string();
        let t2 = parse_type(&printed).unwrap_or_else(|e| panic!("re-parse of {printed:?}: {e}"));
        assert_eq!(
            t1, t2,
            "round trip failed:\n  src: {src}\n  printed: {printed}"
        );
    }

    #[test]
    fn round_trips_core_constructs() {
        for src in [
            "String",
            "Integer",
            "String<#50,#34798>",
            "Integer<#4,#1800,#2100,#300>",
            "a[ String ]",
            "@type[ String ]",
            "~[ String ]",
            "~!nyt[ String ]",
            "~!nyt,suntimes[ String ]",
            "a[ String ], b[ Integer ]",
            "a[ String ] | b[ Integer ]",
            "(a[ () ], b[ () ]) | c[ () ]",
            "a[ () ]*",
            "a[ () ]+",
            "a[ () ]?",
            "a[ () ]{1,10}",
            "a[ () ]{2,*}",
            "Review*<#10>",
            "show [ @type[ String ], title[ String ], (Movie | TV) ]",
        ] {
            // `Review` and `Movie`/`TV` refs are fine at the type level.
            round_trip_type(src);
        }
    }

    #[test]
    fn round_trips_a_schema() {
        let src = "type IMDB = imdb[ Show{0,*}, Director{0,*} ]
                   type Show = show [ title[ String<#50> ], year[ Integer ], Aka{1,10}<#3> ]
                   type Aka = aka[ String ]
                   type Director = director[ name[ String ] ]";
        let s1 = parse_schema(src).unwrap();
        let s2 = parse_schema(&s1.to_string()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn nested_unions_print_with_parens() {
        round_trip_type("a[ (b[ () ] | c[ () ]), d[ () ] ]");
        round_trip_type("(a[ () ] | b[ () ])*");
        round_trip_type("(a[ () ], b[ () ])?");
    }
}
