//! Synthetic "mega-schema" generation: parameterized schemas far larger
//! than the hand-written IMDB application, for scaling experiments.
//!
//! The paper's evaluation runs the greedy search over one 12-type schema;
//! the view-selection literature observes that the storage-configuration
//! search space blows up quickly with schema size, which is where
//! scheduling quality (not just per-candidate cost) starts to decide
//! wall-clock. This module grows the *problem*: [`mega_schema`] emits a
//! seeded, tree-shaped schema with tunable type count, nesting depth,
//! fan-out, union density, and repetition density — in the same textual
//! type-algebra notation as everything else (the output round-trips
//! through [`crate::parse_schema`]) — plus path-level [`Statistics`]
//! sized so that fat payloads exist to outline and keys exist to probe.
//!
//! Everything is a pure function of [`MegaConfig`] (including its seed):
//! the same config produces byte-identical schema text and statistics on
//! every platform, which the scale benches and CI gates rely on.

use crate::schema::Schema;
use legodb_util::{Rng, StdRng};
use legodb_xml::stats::Statistics;
use std::fmt::Write as _;

/// Knobs for one synthetic schema. The defaults approximate the IMDB
/// application's shape at unit scale (`types: 12`).
#[derive(Debug, Clone)]
pub struct MegaConfig {
    /// Number of named types (= elements) to generate, ≥ 1.
    pub types: usize,
    /// Maximum nesting depth of the element tree (root is depth 0).
    pub max_depth: usize,
    /// Maximum children attached to one element (≥ 1; the actual count
    /// per element is sampled in `1..=fanout`).
    pub fanout: usize,
    /// Probability that a pair of sibling references is wrapped into a
    /// union `( A | B )` instead of a sequence.
    pub union_density: f64,
    /// Probability that a child reference is repeated (`{0,*}`); the
    /// remainder are optional (`{0,1}`) or exactly-once, split evenly.
    pub repetition_density: f64,
    /// Probability that an element's payload column is *fat* (hundreds
    /// to thousands of bytes) — the columns worth outlining.
    pub fat_density: f64,
    /// PRNG seed: everything downstream is a pure function of it.
    pub seed: u64,
}

impl Default for MegaConfig {
    fn default() -> Self {
        MegaConfig {
            types: 12,
            max_depth: 6,
            fanout: 4,
            union_density: 0.15,
            repetition_density: 0.4,
            fat_density: 0.3,
            seed: 0,
        }
    }
}

impl MegaConfig {
    /// The IMDB-equivalent shape scaled `scale`× in type count (the unit
    /// scale matches the Appendix B schema's 12 types), with depth
    /// growing logarithmically the way real document schemas do.
    pub fn imdb_scaled(scale: usize) -> MegaConfig {
        let scale = scale.max(1);
        MegaConfig {
            types: 12 * scale,
            max_depth: 5 + scale.ilog2() as usize,
            ..MegaConfig::default()
        }
    }
}

/// How one generated element hangs off its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurrence {
    /// Exactly once.
    One,
    /// `{0,1}`.
    Optional,
    /// `{0,*}`.
    Repeated,
    /// One branch of a `( A | B )` union.
    UnionBranch,
}

/// One generated type's geometry, for building workloads and assertions
/// downstream without re-deriving the tree.
#[derive(Debug, Clone)]
pub struct MegaType {
    /// Index into the generated type list (`T{index}` / `e{index}`).
    pub index: usize,
    /// Element-name path from the root to this element, inclusive.
    pub path: Vec<String>,
    /// Nesting depth (root = 0).
    pub depth: usize,
    /// How this element occurs under its parent (root: `One`).
    pub occurrence: Occurrence,
    /// Name of the key column child (`key{index}`), selective by
    /// construction.
    pub key: String,
    /// Name of the payload column child (`pay{index}`).
    pub payload: String,
    /// Whether the payload is fat (worth outlining).
    pub fat: bool,
    /// Expected element count under the generated statistics.
    pub count: u64,
}

/// A generated schema with its source text, geometry, and statistics.
#[derive(Debug, Clone)]
pub struct MegaSchema {
    /// The parsed schema.
    pub schema: Schema,
    /// The type-algebra source it was parsed from (round-trips).
    pub source: String,
    /// Per-type geometry, in generation (BFS) order; `[0]` is the root.
    pub types: Vec<MegaType>,
    /// Path statistics consistent with the geometry.
    pub stats: Statistics,
}

/// Element counts are clamped here so multiplicative repetition down a
/// deep spine cannot push the cost model into astronomically large (but
/// still finite) table cardinalities.
const MAX_COUNT: u64 = 5_000_000;

/// Generate one synthetic schema. Pure in `config` (see module docs).
///
/// # Panics
/// Never for `config.types ≥ 1`: the emitted source is valid by
/// construction and the parse is checked by tests across the knob space.
pub fn mega_schema(config: &MegaConfig) -> MegaSchema {
    let n = config.types.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- shape: BFS over the type pool --------------------------------
    // children[i] = (child index, occurrence), in sibling order.
    let mut children: Vec<Vec<(usize, Occurrence)>> = vec![Vec::new(); n];
    let mut meta: Vec<(usize, Occurrence)> = vec![(0, Occurrence::One); n]; // (depth, occurrence)
    let mut parent_of: Vec<usize> = vec![0; n];
    let mut order: Vec<usize> = vec![0]; // BFS order of attachment
    let mut queue: std::collections::VecDeque<usize> = [0].into();
    let mut next = 1;
    while next < n {
        // Every open slot is at max depth; widen the root instead of
        // dropping types so `types` is always honored exactly.
        let parent = queue.pop_front().unwrap_or(0);
        let (pdepth, _) = meta[parent];
        let want = rng.gen_range(1..=config.fanout.max(1));
        for _ in 0..want {
            if next >= n {
                break;
            }
            let occurrence = if rng.gen_bool(config.repetition_density.clamp(0.0, 1.0)) {
                Occurrence::Repeated
            } else if rng.gen_bool(0.5) {
                Occurrence::Optional
            } else {
                Occurrence::One
            };
            children[parent].push((next, occurrence));
            meta[next] = (pdepth + 1, occurrence);
            parent_of[next] = parent;
            order.push(next);
            if pdepth + 1 < config.max_depth {
                queue.push_back(next);
            }
            next += 1;
        }
    }

    // Union formation: downgrade the last two single-occurrence siblings
    // of a node into a `( A | B )` pair with the configured probability.
    // Only exactly-once siblings qualify — the textual notation attaches
    // occurrence to references, and a repeated union would change the
    // geometry recorded above.
    let mut union_pairs: Vec<Option<usize>> = vec![None; n]; // i -> union partner (i < partner)
    for kids in &mut children {
        let singles: Vec<usize> = kids
            .iter()
            .filter(|(_, o)| *o == Occurrence::One)
            .map(|(c, _)| *c)
            .collect();
        if singles.len() >= 2 && rng.gen_bool(config.union_density.clamp(0.0, 1.0)) {
            let (a, b) = (singles[singles.len() - 2], singles[singles.len() - 1]);
            union_pairs[a] = Some(b);
            for (c, o) in kids.iter_mut() {
                if *c == a || *c == b {
                    *o = Occurrence::UnionBranch;
                }
            }
            meta[a].1 = Occurrence::UnionBranch;
            meta[b].1 = Occurrence::UnionBranch;
        }
    }

    // --- columns ------------------------------------------------------
    let mut fat: Vec<bool> = Vec::with_capacity(n);
    let mut pay_size: Vec<u32> = Vec::with_capacity(n);
    for _ in 0..n {
        let is_fat = rng.gen_bool(config.fat_density.clamp(0.0, 1.0));
        fat.push(is_fat);
        pay_size.push(if is_fat {
            rng.gen_range(500..=4000)
        } else {
            rng.gen_range(20..=80)
        });
    }

    // --- source text --------------------------------------------------
    let mut source = String::new();
    for i in 0..n {
        let mut body = format!("key{i}[ String<#16> ], pay{i}[ String<#{}> ]", pay_size[i]);
        let mut skip_next_of: Option<usize> = None;
        for &(c, occurrence) in &children[i] {
            if Some(c) == skip_next_of {
                continue;
            }
            match occurrence {
                Occurrence::One => {
                    let _ = write!(body, ", T{c}");
                }
                Occurrence::Optional => {
                    let _ = write!(body, ", T{c}{{0,1}}");
                }
                Occurrence::Repeated => {
                    let _ = write!(body, ", T{c}{{0,*}}");
                }
                Occurrence::UnionBranch => {
                    if let Some(b) = union_pairs[c] {
                        let _ = write!(body, ", ( T{c} | T{b} )");
                        skip_next_of = Some(b);
                    }
                }
            }
        }
        let _ = writeln!(source, "type T{i} = e{i}[ {body} ]");
    }

    // lint: allow(no-unwrap-in-lib) — the emitted source is valid by construction; tests sweep the knob space
    let schema = crate::parse_schema(&source).expect("generated mega-schema parses");

    // --- geometry + statistics ----------------------------------------
    let mut paths: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut counts: Vec<u64> = vec![1; n];
    let mut stats = Statistics::new();
    let mut types = Vec::with_capacity(n);
    for &i in &order {
        let (depth, occurrence) = meta[i];
        let (parent_path, parent_count) = if i == 0 {
            (Vec::new(), 1)
        } else {
            // `order` is BFS, so the parent's path and count are final
            // by the time i is visited.
            let parent = parent_of[i];
            (paths[parent].clone(), counts[parent])
        };
        let mut path = parent_path;
        path.push(format!("e{i}"));
        let count = match occurrence {
            Occurrence::One => parent_count,
            Occurrence::Optional => (parent_count * 7 / 10).max(1),
            Occurrence::UnionBranch => (parent_count / 2).max(1),
            Occurrence::Repeated => {
                let avg = rng.gen_range(2u64..=6);
                (parent_count.saturating_mul(avg)).min(MAX_COUNT)
            }
        };
        paths[i] = path.clone();
        counts[i] = count;

        stats.set_count(&path, count);
        let mut key_path = path.clone();
        key_path.push(format!("key{i}"));
        stats
            .set_count(&key_path, count)
            .set_size(&key_path, 16.0)
            .set_distinct(&key_path, count.max(1));
        let mut pay_path = path.clone();
        pay_path.push(format!("pay{i}"));
        stats
            .set_count(&pay_path, count)
            .set_size(&pay_path, f64::from(pay_size[i]));

        types.push(MegaType {
            index: i,
            path,
            depth,
            occurrence,
            key: format!("key{i}"),
            payload: format!("pay{i}"),
            fat: fat[i],
            count,
        });
    }
    types.sort_by_key(|t| t.index);

    MegaSchema {
        schema,
        source,
        types,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let config = MegaConfig {
            types: 60,
            seed: 42,
            ..MegaConfig::default()
        };
        let a = mega_schema(&config);
        let b = mega_schema(&config);
        assert_eq!(a.source, b.source);
        assert_eq!(a.types.len(), b.types.len());
        let c = mega_schema(&MegaConfig { seed: 43, ..config });
        assert_ne!(a.source, c.source, "different seeds, different schemas");
    }

    #[test]
    fn honors_the_type_count_exactly() {
        for n in [1, 2, 12, 120, 360] {
            let m = mega_schema(&MegaConfig {
                types: n,
                ..MegaConfig::default()
            });
            assert_eq!(m.types.len(), n);
            assert_eq!(m.schema.len(), n, "schema should define {n} types");
        }
    }

    #[test]
    fn respects_depth_and_fanout_bounds() {
        let config = MegaConfig {
            types: 200,
            max_depth: 4,
            fanout: 3,
            ..MegaConfig::default()
        };
        let m = mega_schema(&config);
        // Overflow attaches to the root when every slot is at max depth,
        // so the root may exceed `fanout`; every other node must not.
        for t in &m.types {
            assert!(
                t.depth <= config.max_depth,
                "T{} at depth {}",
                t.index,
                t.depth
            );
            assert_eq!(t.path.len(), t.depth + 1);
        }
    }

    #[test]
    fn density_knobs_reach_their_extremes() {
        let none = mega_schema(&MegaConfig {
            types: 80,
            union_density: 0.0,
            repetition_density: 0.0,
            ..MegaConfig::default()
        });
        assert!(
            !none.source.contains('|'),
            "union_density 0 emitted a union"
        );
        assert!(
            !none.source.contains("{0,*}"),
            "repetition_density 0 emitted a repetition"
        );
        let all = mega_schema(&MegaConfig {
            types: 80,
            union_density: 1.0,
            repetition_density: 1.0,
            ..MegaConfig::default()
        });
        // With every child repeated there are no single-occurrence
        // sibling pairs, so unions cannot form — repetition wins.
        assert!(all.source.contains("{0,*}"));
        let unions = mega_schema(&MegaConfig {
            types: 80,
            union_density: 1.0,
            repetition_density: 0.0,
            ..MegaConfig::default()
        });
        assert!(unions.source.contains('|'), "union_density 1 emitted none");
    }

    #[test]
    fn statistics_cover_every_element_path() {
        let m = mega_schema(&MegaConfig {
            types: 50,
            seed: 7,
            ..MegaConfig::default()
        });
        for t in &m.types {
            assert!(t.count >= 1);
            // Root and exactly-once spine elements keep the parent count;
            // everything is clamped.
            assert!(t.count <= MAX_COUNT);
            assert!(t.path[t.depth] == format!("e{}", t.index));
        }
    }

    #[test]
    fn imdb_scaled_tracks_the_appendix_shape() {
        assert_eq!(MegaConfig::imdb_scaled(1).types, 12);
        assert_eq!(MegaConfig::imdb_scaled(10).types, 120);
        assert_eq!(MegaConfig::imdb_scaled(100).types, 1200);
        assert!(MegaConfig::imdb_scaled(100).max_depth > MegaConfig::imdb_scaled(1).max_depth);
    }
}
