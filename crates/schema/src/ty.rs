//! The type AST of the XML Query Algebra subset used by LegoDB, with the
//! paper's statistics annotations attached where they appear in p-schemas.

use crate::name::{NameTest, TypeName};

/// A scalar datatype of the algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ScalarKind {
    /// Character data (`String`). DTD `#PCDATA` maps here.
    String,
    /// Integral data (`Integer`).
    Integer,
}

/// Statistics annotated on a scalar occurrence in a p-schema, as in
/// `String<#50,#34798>` (size, distincts) and
/// `Integer<#4,#1800,#2100,#300>` (size, min, max, distincts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalarStats {
    /// Average (strings) or fixed (integers) size in bytes.
    pub size: Option<f64>,
    /// Minimum value (integers).
    pub min: Option<i64>,
    /// Maximum value (integers).
    pub max: Option<i64>,
    /// Number of distinct values.
    pub distinct: Option<u64>,
}

impl ScalarStats {
    /// No statistics known.
    pub const fn none() -> Self {
        ScalarStats {
            size: None,
            min: None,
            max: None,
            distinct: None,
        }
    }

    /// True when no component is recorded (so the printer can elide `<#...>`).
    pub fn is_empty(&self) -> bool {
        self.size.is_none() && self.min.is_none() && self.max.is_none() && self.distinct.is_none()
    }
}

/// Occurrence bounds of a repetition: `{min, max}` with `max = None`
/// meaning unbounded (`*` in `{1,*}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Occurs {
    /// Minimum number of occurrences.
    pub min: u32,
    /// Maximum number of occurrences; `None` is unbounded.
    pub max: Option<u32>,
}

impl Occurs {
    /// `{0,*}` — the Kleene star.
    pub const STAR: Occurs = Occurs { min: 0, max: None };
    /// `{1,*}` — one or more.
    pub const PLUS: Occurs = Occurs { min: 1, max: None };
    /// `{0,1}` — optional.
    pub const OPT: Occurs = Occurs {
        min: 0,
        max: Some(1),
    };

    /// An arbitrary bounded or unbounded range.
    pub const fn new(min: u32, max: Option<u32>) -> Self {
        Occurs { min, max }
    }

    /// Can the repetition match the empty sequence?
    pub fn nullable(&self) -> bool {
        self.min == 0
    }

    /// Can more than one occurrence appear?
    pub fn multi_valued(&self) -> bool {
        self.max.is_none_or(|m| m > 1)
    }

    /// The bounds after consuming one occurrence
    /// (`a{2,5}` → `a{1,4}`, `a*` → `a*`).
    pub fn decrement(&self) -> Occurs {
        Occurs {
            min: self.min.saturating_sub(1),
            max: self.max.map(|m| m.saturating_sub(1)),
        }
    }

    /// Is the range empty (`{0,0}`)?
    pub fn is_exhausted(&self) -> bool {
        self.max == Some(0)
    }
}

/// A type expression of the algebra.
///
/// The grammar mirrors the paper's notation:
/// scalars (`String`, `Integer`), attributes (`@type[ String ]`),
/// elements (`show [ ... ]`, wildcard `~[ ... ]`), sequences (`,`),
/// unions (`|`), repetitions (`*`, `+`, `?`, `{m,n}`), and references to
/// named types (`Show`).
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// The empty sequence (unit of `Seq`).
    Empty,
    /// A scalar datatype, with optional statistics annotations.
    Scalar {
        /// Which scalar.
        kind: ScalarKind,
        /// `<#...>` annotations, if present.
        stats: ScalarStats,
    },
    /// An attribute `@name[ content ]`; content is scalar in practice.
    Attribute {
        /// The attribute name (no `@`).
        name: String,
        /// The attribute's content type.
        content: Box<Type>,
    },
    /// An element `nametest [ content ]`.
    Element {
        /// Tag-name test, possibly a wildcard.
        name: NameTest,
        /// The element's content type.
        content: Box<Type>,
    },
    /// A sequence `t1, t2, ...` (invariant: ≥ 2 items, none `Empty`/`Seq`).
    Seq(Vec<Type>),
    /// A union `t1 | t2 | ...` (invariant: ≥ 2 items, none `Choice`).
    Choice(Vec<Type>),
    /// A repetition `t{min,max}` with an optional per-parent average count
    /// annotation (`Review*<#10>`: ten reviews per parent on average).
    Rep {
        /// The repeated item.
        inner: Box<Type>,
        /// Occurrence bounds.
        occurs: Occurs,
        /// `<#count>` annotation: average occurrences per parent.
        avg_count: Option<f64>,
    },
    /// A reference to a named type.
    Ref(TypeName),
}

impl Type {
    /// A plain string scalar without statistics.
    pub fn string() -> Type {
        Type::Scalar {
            kind: ScalarKind::String,
            stats: ScalarStats::none(),
        }
    }

    /// A plain integer scalar without statistics.
    pub fn integer() -> Type {
        Type::Scalar {
            kind: ScalarKind::Integer,
            stats: ScalarStats::none(),
        }
    }

    /// An element with a literal name.
    pub fn element(name: impl Into<String>, content: Type) -> Type {
        Type::Element {
            name: NameTest::Name(name.into()),
            content: Box::new(content),
        }
    }

    /// A wildcard element `~[ content ]`.
    pub fn wildcard(content: Type) -> Type {
        Type::Element {
            name: NameTest::Any,
            content: Box::new(content),
        }
    }

    /// An attribute.
    pub fn attribute(name: impl Into<String>, content: Type) -> Type {
        Type::Attribute {
            name: name.into(),
            content: Box::new(content),
        }
    }

    /// A reference to a named type.
    pub fn reference(name: impl Into<TypeName>) -> Type {
        Type::Ref(name.into())
    }

    /// Smart constructor for sequences: flattens nested sequences, drops
    /// `Empty`, and collapses singletons.
    pub fn seq(items: impl IntoIterator<Item = Type>) -> Type {
        let mut out = Vec::new();
        for item in items {
            match item {
                Type::Empty => {}
                Type::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Type::Empty,
            // lint: allow(no-unwrap-in-lib) — len == 1 matched by this arm
            1 => out.pop().expect("len checked"),
            _ => Type::Seq(out),
        }
    }

    /// Smart constructor for unions: flattens nested unions and collapses
    /// singletons. (Does **not** deduplicate: `a|a` is kept, harmless.)
    pub fn choice(items: impl IntoIterator<Item = Type>) -> Type {
        let mut out = Vec::new();
        for item in items {
            match item {
                Type::Choice(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Type::Empty,
            // lint: allow(no-unwrap-in-lib) — len == 1 matched by this arm
            1 => out.pop().expect("len checked"),
            _ => Type::Choice(out),
        }
    }

    /// Smart constructor for repetitions. `t{1,1}` collapses to `t`;
    /// `t{0,0}` collapses to `Empty`.
    pub fn rep(inner: Type, occurs: Occurs) -> Type {
        Type::rep_with_count(inner, occurs, None)
    }

    /// [`Type::rep`] with a `<#count>` average-count annotation.
    pub fn rep_with_count(inner: Type, occurs: Occurs, avg_count: Option<f64>) -> Type {
        if occurs.max == Some(0) {
            return Type::Empty;
        }
        if occurs.min == 1 && occurs.max == Some(1) {
            return inner;
        }
        Type::Rep {
            inner: Box::new(inner),
            occurs,
            avg_count,
        }
    }

    /// `t?` — optional.
    pub fn optional(inner: Type) -> Type {
        Type::rep(inner, Occurs::OPT)
    }

    /// `t*`.
    pub fn star(inner: Type) -> Type {
        Type::rep(inner, Occurs::STAR)
    }

    /// `t+`.
    pub fn plus(inner: Type) -> Type {
        Type::rep(inner, Occurs::PLUS)
    }

    /// All type names referenced anywhere inside this type, in first-seen
    /// order, with duplicates removed.
    pub fn referenced_types(&self) -> Vec<TypeName> {
        let mut out = Vec::new();
        self.visit(&mut |t| {
            if let Type::Ref(name) = t {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Visit every node of the type tree, parents before children.
    pub fn visit(&self, f: &mut impl FnMut(&Type)) {
        f(self);
        match self {
            Type::Empty | Type::Scalar { .. } | Type::Ref(_) => {}
            Type::Attribute { content, .. } | Type::Element { content, .. } => content.visit(f),
            Type::Seq(items) | Type::Choice(items) => {
                for item in items {
                    item.visit(f);
                }
            }
            Type::Rep { inner, .. } => inner.visit(f),
        }
    }

    /// Rewrite the tree bottom-up: children are transformed first, then `f`
    /// is applied to the rebuilt node. Smart constructors re-normalize.
    pub fn map(self, f: &mut impl FnMut(Type) -> Type) -> Type {
        let rebuilt = match self {
            Type::Attribute { name, content } => Type::Attribute {
                name,
                content: Box::new(content.map(f)),
            },
            Type::Element { name, content } => Type::Element {
                name,
                content: Box::new(content.map(f)),
            },
            Type::Seq(items) => Type::seq(items.into_iter().map(|t| t.map(f))),
            Type::Choice(items) => Type::choice(items.into_iter().map(|t| t.map(f))),
            Type::Rep {
                inner,
                occurs,
                avg_count,
            } => Type::rep_with_count(inner.map(f), occurs, avg_count),
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// True if this node is (syntactically) a scalar.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Scalar { .. })
    }

    /// The sequence items if this is a `Seq`, else a one-element slice view
    /// of `self` (or empty for `Empty`). Convenience for iteration.
    pub fn seq_items(&self) -> &[Type] {
        match self {
            Type::Seq(items) => items,
            Type::Empty => &[],
            other => std::slice::from_ref(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_smart_constructor_flattens_and_collapses() {
        let t = Type::seq([
            Type::Empty,
            Type::seq([Type::string(), Type::integer()]),
            Type::string(),
        ]);
        match &t {
            Type::Seq(items) => assert_eq!(items.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
        assert_eq!(Type::seq([Type::string()]), Type::string());
        assert_eq!(Type::seq(Vec::<Type>::new()), Type::Empty);
    }

    #[test]
    fn choice_smart_constructor_flattens() {
        let t = Type::choice([
            Type::choice([Type::string(), Type::integer()]),
            Type::reference("TV"),
        ]);
        match &t {
            Type::Choice(items) => assert_eq!(items.len(), 3),
            other => panic!("expected Choice, got {other:?}"),
        }
    }

    #[test]
    fn rep_collapses_trivial_bounds() {
        assert_eq!(
            Type::rep(Type::string(), Occurs::new(1, Some(1))),
            Type::string()
        );
        assert_eq!(
            Type::rep(Type::string(), Occurs::new(0, Some(0))),
            Type::Empty
        );
        assert!(matches!(Type::star(Type::string()), Type::Rep { .. }));
    }

    #[test]
    fn occurs_predicates() {
        assert!(Occurs::STAR.nullable());
        assert!(Occurs::STAR.multi_valued());
        assert!(!Occurs::OPT.multi_valued());
        assert!(Occurs::PLUS.multi_valued());
        assert!(!Occurs::PLUS.nullable());
        assert!(!Occurs::new(1, Some(10)).nullable());
        assert!(Occurs::new(1, Some(10)).multi_valued());
    }

    #[test]
    fn occurs_decrement() {
        let o = Occurs::new(2, Some(5)).decrement();
        assert_eq!((o.min, o.max), (1, Some(4)));
        let s = Occurs::STAR.decrement();
        assert_eq!((s.min, s.max), (0, None));
        assert!(Occurs::new(0, Some(1)).decrement().is_exhausted());
    }

    #[test]
    fn referenced_types_deduplicates_in_order() {
        let t = Type::seq([
            Type::reference("Aka"),
            Type::star(Type::reference("Review")),
            Type::choice([Type::reference("Movie"), Type::reference("TV")]),
            Type::reference("Aka"),
        ]);
        let names: Vec<String> = t.referenced_types().iter().map(|n| n.to_string()).collect();
        assert_eq!(names, ["Aka", "Review", "Movie", "TV"]);
    }

    #[test]
    fn map_rewrites_bottom_up() {
        // Replace every Integer with String.
        let t = Type::element("show", Type::seq([Type::integer(), Type::string()]));
        let t = t.map(&mut |node| match node {
            Type::Scalar {
                kind: ScalarKind::Integer,
                stats,
            } => Type::Scalar {
                kind: ScalarKind::String,
                stats,
            },
            other => other,
        });
        let mut ints = 0;
        t.visit(&mut |n| {
            if matches!(
                n,
                Type::Scalar {
                    kind: ScalarKind::Integer,
                    ..
                }
            ) {
                ints += 1;
            }
        });
        assert_eq!(ints, 0);
    }

    #[test]
    fn seq_items_views() {
        assert_eq!(Type::Empty.seq_items().len(), 0);
        assert_eq!(Type::string().seq_items().len(), 1);
        assert_eq!(
            Type::seq([Type::string(), Type::integer()])
                .seq_items()
                .len(),
            2
        );
    }
}
