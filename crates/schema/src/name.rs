//! Type names and element name tests (wildcards).

use std::borrow::Borrow;
use std::fmt;

/// The name of a type definition, e.g. `Show` in `type Show = ...`.
///
/// Type names never appear in documents — they classify elements, and the
/// LegoDB mapping creates one relation per type name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeName(String);

impl TypeName {
    /// Wrap a string as a type name.
    pub fn new(name: impl Into<String>) -> Self {
        TypeName(name.into())
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Derive a fresh name with a suffix, e.g. `Show` → `Show_Part1`.
    /// Used by transformations that split types.
    pub fn suffixed(&self, suffix: &str) -> TypeName {
        TypeName(format!("{}_{}", self.0, suffix))
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TypeName {
    fn from(s: &str) -> Self {
        TypeName::new(s)
    }
}

impl From<String> for TypeName {
    fn from(s: String) -> Self {
        TypeName(s)
    }
}

impl Borrow<str> for TypeName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// A test on an element's tag name: a literal name, the `~` wildcard
/// (any name), or `~!a,b` (any name except those listed) — the paper's
/// wildcard notation from [8].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NameTest {
    /// A literal tag name.
    Name(String),
    /// `~`: any tag name.
    Any,
    /// `~!a`: any tag name except the listed ones.
    AnyExcept(Vec<String>),
}

impl NameTest {
    /// Does a concrete tag name satisfy this test?
    pub fn matches(&self, name: &str) -> bool {
        match self {
            NameTest::Name(n) => n == name,
            NameTest::Any => true,
            NameTest::AnyExcept(excluded) => !excluded.iter().any(|e| e == name),
        }
    }

    /// The literal name, if this is not a wildcard.
    pub fn literal(&self) -> Option<&str> {
        match self {
            NameTest::Name(n) => Some(n),
            _ => None,
        }
    }

    /// True for `~` and `~!...`.
    pub fn is_wildcard(&self) -> bool {
        !matches!(self, NameTest::Name(_))
    }
}

impl fmt::Display for NameTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameTest::Name(n) => f.write_str(n),
            NameTest::Any => f.write_str("~"),
            NameTest::AnyExcept(ex) => write!(f, "~!{}", ex.join(",")),
        }
    }
}

impl From<&str> for NameTest {
    fn from(s: &str) -> Self {
        NameTest::Name(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_name_matches_only_itself() {
        let nt = NameTest::Name("nyt".into());
        assert!(nt.matches("nyt"));
        assert!(!nt.matches("suntimes"));
        assert_eq!(nt.literal(), Some("nyt"));
        assert!(!nt.is_wildcard());
    }

    #[test]
    fn any_matches_everything() {
        assert!(NameTest::Any.matches("anything"));
        assert!(NameTest::Any.is_wildcard());
        assert_eq!(NameTest::Any.literal(), None);
    }

    #[test]
    fn any_except_excludes_listed_names() {
        let nt = NameTest::AnyExcept(vec!["nyt".into()]);
        assert!(!nt.matches("nyt"));
        assert!(nt.matches("suntimes"));
        assert!(nt.is_wildcard());
    }

    #[test]
    fn display_forms() {
        assert_eq!(NameTest::Name("a".into()).to_string(), "a");
        assert_eq!(NameTest::Any.to_string(), "~");
        assert_eq!(NameTest::AnyExcept(vec!["nyt".into()]).to_string(), "~!nyt");
    }

    #[test]
    fn type_name_suffixing() {
        let t = TypeName::new("Show");
        assert_eq!(t.suffixed("Part1").as_str(), "Show_Part1");
    }
}
