//! [`Schema`]: an ordered collection of named type definitions with a
//! designated root type, plus well-formedness checks.

use crate::name::TypeName;
use crate::ty::Type;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A schema: named type definitions plus a root type name.
///
/// Definition order is preserved (it matters for readable output and for
/// deterministic search), and lookup is O(log n) through an index.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    root: TypeName,
    order: Vec<TypeName>,
    types: BTreeMap<TypeName, Type>,
}

/// Schema construction / well-formedness errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A `Ref` points to a type with no definition.
    UndefinedType {
        referrer: TypeName,
        missing: TypeName,
    },
    /// Two `type X = ...` declarations share a name.
    DuplicateType(TypeName),
    /// The declared root has no definition.
    UndefinedRoot(TypeName),
    /// The schema has no type declarations at all.
    Empty,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UndefinedType { referrer, missing } => {
                write!(f, "type {referrer} references undefined type {missing}")
            }
            SchemaError::DuplicateType(t) => write!(f, "duplicate definition of type {t}"),
            SchemaError::UndefinedRoot(t) => write!(f, "root type {t} is not defined"),
            SchemaError::Empty => write!(f, "schema has no type definitions"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Build a schema from `(name, definition)` pairs; the first pair is the
    /// root. Checks for duplicates and dangling references.
    pub fn new(defs: impl IntoIterator<Item = (TypeName, Type)>) -> Result<Schema, SchemaError> {
        let mut order = Vec::new();
        let mut types = BTreeMap::new();
        for (name, ty) in defs {
            if types.insert(name.clone(), ty).is_some() {
                return Err(SchemaError::DuplicateType(name));
            }
            order.push(name);
        }
        let root = order.first().cloned().ok_or(SchemaError::Empty)?;
        let schema = Schema { root, order, types };
        schema.check()?;
        Ok(schema)
    }

    /// Like [`Schema::new`] but with an explicit root.
    pub fn with_root(
        root: impl Into<TypeName>,
        defs: impl IntoIterator<Item = (TypeName, Type)>,
    ) -> Result<Schema, SchemaError> {
        let mut schema = Schema::new(defs)?;
        let root = root.into();
        if !schema.types.contains_key(&root) {
            return Err(SchemaError::UndefinedRoot(root));
        }
        schema.root = root;
        Ok(schema)
    }

    fn check(&self) -> Result<(), SchemaError> {
        for (name, ty) in &self.types {
            for referenced in ty.referenced_types() {
                if !self.types.contains_key(&referenced) {
                    return Err(SchemaError::UndefinedType {
                        referrer: name.clone(),
                        missing: referenced,
                    });
                }
            }
        }
        Ok(())
    }

    /// The root type name.
    pub fn root(&self) -> &TypeName {
        &self.root
    }

    /// The definition of the root type.
    pub fn root_type(&self) -> &Type {
        &self.types[&self.root]
    }

    /// Look up a type definition.
    pub fn get(&self, name: &TypeName) -> Option<&Type> {
        self.types.get(name)
    }

    /// Look up a type definition by string name.
    pub fn get_str(&self, name: &str) -> Option<&Type> {
        self.types.get(name)
    }

    /// Replace (or insert) a definition. Inserting a new name appends it to
    /// the declaration order. The caller must keep references consistent;
    /// [`Schema::validate_refs`] re-checks.
    pub fn set(&mut self, name: TypeName, ty: Type) {
        if !self.types.contains_key(&name) {
            self.order.push(name.clone());
        }
        self.types.insert(name, ty);
    }

    /// Remove a definition (root cannot be removed). Returns the old
    /// definition, if any.
    pub fn remove(&mut self, name: &TypeName) -> Option<Type> {
        if name == &self.root {
            return None;
        }
        let old = self.types.remove(name);
        if old.is_some() {
            self.order.retain(|n| n != name);
        }
        old
    }

    /// Re-run the dangling-reference check (after mutations).
    pub fn validate_refs(&self) -> Result<(), SchemaError> {
        self.check()
    }

    /// Type names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &TypeName> {
        self.order.iter()
    }

    /// `(name, definition)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&TypeName, &Type)> {
        self.order.iter().map(move |n| (n, &self.types[n]))
    }

    /// Number of type definitions.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the schema has no definitions (unreachable post-construction,
    /// but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Does any *other* type (or the same type, for recursion) reference
    /// `name` more than once in total, or from more than one site? Used by
    /// the inlining transformation, which requires unshared types.
    pub fn reference_count(&self, name: &TypeName) -> usize {
        let mut count = 0;
        for ty in self.types.values() {
            ty.visit(&mut |t| {
                if matches!(t, Type::Ref(n) if n == name) {
                    count += 1;
                }
            });
        }
        count
    }

    /// The set of types that reference `name` (its "parent types" in the
    /// paper's mapping: they generate the foreign keys).
    pub fn parents_of(&self, name: &TypeName) -> Vec<TypeName> {
        let mut out = Vec::new();
        for (candidate, ty) in self.iter() {
            let mut found = false;
            ty.visit(&mut |t| {
                if matches!(t, Type::Ref(n) if n == name) {
                    found = true;
                }
            });
            if found {
                out.push(candidate.clone());
            }
        }
        out
    }

    /// Types reachable from the root (via references), in BFS order.
    pub fn reachable(&self) -> Vec<TypeName> {
        let mut seen = BTreeSet::new();
        let mut queue = vec![self.root.clone()];
        let mut out = Vec::new();
        while let Some(name) = queue.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            out.push(name.clone());
            if let Some(ty) = self.types.get(&name) {
                queue.extend(ty.referenced_types());
            }
        }
        out
    }

    /// Drop definitions not reachable from the root. Transformations that
    /// detach types call this to keep the schema (and hence the relational
    /// configuration) minimal.
    pub fn garbage_collect(&mut self) {
        let keep: BTreeSet<TypeName> = self.reachable().into_iter().collect();
        self.order.retain(|n| keep.contains(n));
        self.types.retain(|n, _| keep.contains(n));
    }

    /// Is `name` involved in a reference cycle (recursive type)?
    pub fn is_recursive(&self, name: &TypeName) -> bool {
        // DFS from `name` looking for a path back to `name`.
        let mut stack: Vec<TypeName> = self
            .types
            .get(name)
            .map(|t| t.referenced_types())
            .unwrap_or_default();
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if &n == name {
                return true;
            }
            if seen.insert(n.clone()) {
                if let Some(t) = self.types.get(&n) {
                    stack.extend(t.referenced_types());
                }
            }
        }
        false
    }

    /// Generate a type name not yet used in this schema, based on `stem`.
    pub fn fresh_name(&self, stem: &str) -> TypeName {
        let candidate = TypeName::new(stem);
        if !self.types.contains_key(&candidate) {
            return candidate;
        }
        for i in 1.. {
            let candidate = TypeName::new(format!("{stem}_{i}"));
            if !self.types.contains_key(&candidate) {
                return candidate;
            }
        }
        unreachable!("u32 space exhausted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::Occurs;

    fn imdb_fragment() -> Schema {
        Schema::new([
            (
                TypeName::new("IMDB"),
                Type::element("imdb", Type::star(Type::reference("Show"))),
            ),
            (
                TypeName::new("Show"),
                Type::element(
                    "show",
                    Type::seq([
                        Type::element("title", Type::string()),
                        Type::rep(Type::reference("Aka"), Occurs::new(1, Some(10))),
                        Type::star(Type::reference("Review")),
                    ]),
                ),
            ),
            (TypeName::new("Aka"), Type::element("aka", Type::string())),
            (
                TypeName::new("Review"),
                Type::element("review", Type::string()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn first_definition_is_root() {
        let s = imdb_fragment();
        assert_eq!(s.root().as_str(), "IMDB");
        assert!(matches!(s.root_type(), Type::Element { .. }));
    }

    #[test]
    fn dangling_reference_is_rejected() {
        let err = Schema::new([(
            TypeName::new("A"),
            Type::element("a", Type::reference("Missing")),
        )])
        .unwrap_err();
        assert!(matches!(err, SchemaError::UndefinedType { .. }));
    }

    #[test]
    fn duplicate_definition_is_rejected() {
        let err = Schema::new([
            (TypeName::new("A"), Type::element("a", Type::Empty)),
            (TypeName::new("A"), Type::element("a", Type::Empty)),
        ])
        .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateType(TypeName::new("A")));
    }

    #[test]
    fn empty_schema_is_rejected() {
        assert_eq!(Schema::new([]).unwrap_err(), SchemaError::Empty);
    }

    #[test]
    fn with_root_overrides_and_checks() {
        let defs = [
            (TypeName::new("A"), Type::element("a", Type::Empty)),
            (TypeName::new("B"), Type::element("b", Type::Empty)),
        ];
        let s = Schema::with_root("B", defs.clone()).unwrap();
        assert_eq!(s.root().as_str(), "B");
        assert!(matches!(
            Schema::with_root("C", defs).unwrap_err(),
            SchemaError::UndefinedRoot(_)
        ));
    }

    #[test]
    fn parents_and_reference_counts() {
        let s = imdb_fragment();
        assert_eq!(
            s.parents_of(&TypeName::new("Aka")),
            vec![TypeName::new("Show")]
        );
        assert_eq!(s.reference_count(&TypeName::new("Show")), 1);
        assert_eq!(s.reference_count(&TypeName::new("IMDB")), 0);
    }

    #[test]
    fn reachability_and_gc() {
        let mut s = imdb_fragment();
        s.set(
            TypeName::new("Orphan"),
            Type::element("orphan", Type::Empty),
        );
        assert_eq!(s.len(), 5);
        s.garbage_collect();
        assert_eq!(s.len(), 4);
        assert!(s.get_str("Orphan").is_none());
    }

    #[test]
    fn root_cannot_be_removed() {
        let mut s = imdb_fragment();
        let root = s.root().clone();
        assert!(s.remove(&root).is_none());
        assert!(s.get(&root).is_some());
    }

    #[test]
    fn recursion_detection() {
        let s = Schema::new([(
            TypeName::new("AnyElement"),
            Type::wildcard(Type::star(Type::reference("AnyElement"))),
        )])
        .unwrap();
        assert!(s.is_recursive(&TypeName::new("AnyElement")));
        let t = imdb_fragment();
        assert!(!t.is_recursive(&TypeName::new("Show")));
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let s = imdb_fragment();
        assert_eq!(s.fresh_name("Show").as_str(), "Show_1");
        assert_eq!(s.fresh_name("Zed").as_str(), "Zed");
    }
}
