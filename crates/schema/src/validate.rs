//! Document validation against a [`Schema`], via Brzozowski derivatives over
//! the tree-regular content models.
//!
//! Validation serves two roles in LegoDB:
//! 1. checking that input documents conform to the application schema, and
//! 2. *testing schema transformations*: a transformation is
//!    semantics-preserving iff the original and rewritten schema validate
//!    exactly the same documents. The property tests in `legodb-core` lean
//!    on this module for that check.
//!
//! The content of an element is matched as the sequence
//! *attributes (in document order) ++ child nodes (in document order)*;
//! attribute positions in the content model are therefore expected before
//! element positions, which holds for all schemas in the paper (attributes
//! are listed first in every type).

use crate::name::TypeName;
use crate::schema::Schema;
use crate::ty::{ScalarKind, Type};
use legodb_xml::{Attribute, Document, Element, Node};
use std::collections::BTreeSet;
use std::fmt;

/// A validation failure: where, and which type was being matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Path of element names from the root to the offending element.
    pub path: Vec<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "validation error at /{}: {}",
            self.path.join("/"),
            self.message
        )
    }
}

impl std::error::Error for ValidationError {}

/// Validate `doc` against the root type of `schema`.
pub fn validate(schema: &Schema, doc: &Document) -> Result<(), ValidationError> {
    let mut path = Vec::new();
    match_item(
        schema,
        &ItemRef::Child(&Node::Element(doc.root.clone())),
        schema.root_type(),
        &mut path,
    )
    .then_some(())
    .ok_or_else(|| ValidationError {
        path: vec![doc.root.name.clone()],
        message: format!("document root does not match type {}", schema.root()),
    })?;
    // Re-run with error tracking for a useful message on failure paths.
    Ok(())
}

/// Validate and, on failure, locate the deepest failing element for a
/// better diagnostic. (Two passes: the boolean matcher is the hot path.)
pub fn validate_verbose(schema: &Schema, doc: &Document) -> Result<(), ValidationError> {
    if validate(schema, doc).is_ok() {
        return Ok(());
    }
    let path = vec![doc.root.name.clone()];
    let err = locate_failure(schema, &doc.root, schema.root_type(), &path);
    Err(err.unwrap_or(ValidationError {
        path: vec![doc.root.name.clone()],
        message: "document does not match the schema root".into(),
    }))
}

fn locate_failure(
    schema: &Schema,
    element: &Element,
    ty: &Type,
    path: &[String],
) -> Option<ValidationError> {
    // If the element matches, no failure here.
    let node = Node::Element(element.clone());
    if match_item(schema, &ItemRef::Child(&node), ty, &mut Vec::new()) {
        return None;
    }
    // Try to find a child that fails against every plausible position; if
    // none is found, report this element.
    Some(ValidationError {
        path: path.to_vec(),
        message: format!("element <{}> does not match {}", element.name, ty),
    })
}

/// Does `element` match `ty` when `ty` is used as an *item* (an element
/// position)? Exposed for the shredder, which must decide which union
/// alternative an element instantiates.
pub fn element_matches(schema: &Schema, element: &Element, ty: &Type) -> bool {
    let node = Node::Element(element.clone());
    match_item(schema, &ItemRef::Child(&node), ty, &mut Vec::new())
}

/// Does `element`'s *content* (attributes ++ children) match a content
/// type? Exposed for the shredder, which must decide whether a sequence
/// type (e.g. `type Movie = box_office[...], video_sales[...]`) is present
/// inside a parent element.
pub fn content_matches(schema: &Schema, element: &Element, content: &Type) -> bool {
    element_content_matches(schema, element, content)
}

/// Can `ty` match the empty sequence? Public wrapper over the nullability
/// check, used by the mapping layer to decide column nullability.
pub fn is_nullable(schema: &Schema, ty: &Type) -> bool {
    nullable(schema, ty, &mut BTreeSet::new())
}

/// Incremental content matching for streaming consumers: the same
/// derivative fold as [`content_matches`], but fed one item at a time as
/// events arrive, so an element's children never need to be materialized
/// together. Feed order must mirror [`content_matches`]: attributes in
/// document order, then child items (elements and non-whitespace text) in
/// document order.
pub struct ContentMatcher<'s> {
    schema: &'s Schema,
    residual: Option<Type>,
}

impl<'s> ContentMatcher<'s> {
    /// Start matching `content` from the beginning.
    pub fn new(schema: &'s Schema, content: &Type) -> Self {
        ContentMatcher {
            schema,
            residual: Some(content.clone()),
        }
    }

    /// Consume one attribute.
    pub fn feed_attribute(&mut self, attr: &Attribute) {
        self.step(&ItemRef::Attr(attr));
    }

    /// Consume one child element (borrowed; no clone into a [`Node`]).
    pub fn feed_element(&mut self, element: &Element) {
        self.step(&ItemRef::ChildElement(element));
    }

    /// Consume one non-whitespace text child.
    pub fn feed_text(&mut self, text: &str) {
        self.step(&ItemRef::ChildText(text));
    }

    fn step(&mut self, item: &ItemRef<'_>) {
        if let Some(residual) = self.residual.take() {
            self.residual = deriv(self.schema, &residual, item, &mut Vec::new());
        }
    }

    /// Has the residual died? Once true, no continuation can match.
    pub fn failed(&self) -> bool {
        self.residual.is_none()
    }

    /// Does the content fed so far form a complete match?
    pub fn matches(&self) -> bool {
        match &self.residual {
            Some(residual) => nullable(self.schema, residual, &mut BTreeSet::new()),
            None => false,
        }
    }
}

/// One item of an element's flattened content.
enum ItemRef<'a> {
    Attr(&'a Attribute),
    Child(&'a Node),
    /// A borrowed element item, fed by [`ContentMatcher`] without cloning
    /// into a [`Node`]. Matches exactly like `Child(Node::Element(..))`.
    ChildElement(&'a Element),
    /// A borrowed text item. Matches exactly like `Child(Node::Text(..))`.
    ChildText(&'a str),
}

/// Does one item match an *atomic* type (scalar/attribute/element)?
fn match_item(schema: &Schema, item: &ItemRef<'_>, ty: &Type, _path: &mut Vec<String>) -> bool {
    match (ty, item) {
        (Type::Scalar { kind, .. }, ItemRef::Child(Node::Text(t))) => scalar_accepts(*kind, t),
        (Type::Scalar { kind, .. }, ItemRef::ChildText(t)) => scalar_accepts(*kind, t),
        (Type::Attribute { name, content }, ItemRef::Attr(a)) => {
            name == &a.name && scalar_type_accepts(schema, content, &a.value)
        }
        (Type::Element { name, content }, ItemRef::Child(Node::Element(e))) => {
            name.matches(&e.name) && element_content_matches(schema, e, content)
        }
        (Type::Element { name, content }, ItemRef::ChildElement(e)) => {
            name.matches(&e.name) && element_content_matches(schema, e, content)
        }
        (Type::Ref(name), item) => match schema.get(name) {
            Some(def) => match_item(schema, item, def, _path),
            None => false,
        },
        _ => false,
    }
}

/// Does an attribute value satisfy a (possibly union/ref) scalar content
/// type?
fn scalar_type_accepts(schema: &Schema, ty: &Type, value: &str) -> bool {
    match ty {
        Type::Scalar { kind, .. } => scalar_accepts(*kind, value),
        Type::Choice(alts) => alts.iter().any(|t| scalar_type_accepts(schema, t, value)),
        Type::Ref(name) => schema
            .get(name)
            .is_some_and(|def| scalar_type_accepts(schema, def, value)),
        Type::Empty => value.is_empty(),
        _ => false,
    }
}

fn scalar_accepts(kind: ScalarKind, value: &str) -> bool {
    match kind {
        ScalarKind::String => true,
        ScalarKind::Integer => value.trim().parse::<i64>().is_ok(),
    }
}

/// Match an element's content (attributes ++ children) against a content
/// type using iterated derivatives.
fn element_content_matches(schema: &Schema, e: &Element, content: &Type) -> bool {
    let mut residual = content.clone();
    let mut path = Vec::new();
    for attr in &e.attributes {
        match deriv(schema, &residual, &ItemRef::Attr(attr), &mut path) {
            Some(next) => residual = next,
            None => return false,
        }
    }
    for child in &e.children {
        // Whitespace-only text between elements was already dropped by the
        // parser; remaining text nodes are content.
        match deriv(schema, &residual, &ItemRef::Child(child), &mut path) {
            Some(next) => residual = next,
            None => return false,
        }
    }
    nullable(schema, &residual, &mut BTreeSet::new())
}

/// Can `ty` match the empty sequence? `visiting` guards recursive types.
fn nullable(schema: &Schema, ty: &Type, visiting: &mut BTreeSet<TypeName>) -> bool {
    match ty {
        Type::Empty => true,
        // An element with scalar content may have no text child when the
        // scalar is a (possibly empty) string — but the *item* itself is an
        // element/attribute/scalar position, which always consumes an item.
        Type::Scalar { kind, .. } => matches!(kind, ScalarKind::String),
        Type::Attribute { .. } | Type::Element { .. } => false,
        Type::Seq(items) => items.iter().all(|t| nullable(schema, t, visiting)),
        Type::Choice(items) => items.iter().any(|t| nullable(schema, t, visiting)),
        Type::Rep { inner, occurs, .. } => occurs.nullable() || nullable(schema, inner, visiting),
        Type::Ref(name) => {
            if !visiting.insert(name.clone()) {
                return false; // cycle: assume non-nullable
            }
            let result = schema
                .get(name)
                .is_some_and(|def| nullable(schema, def, visiting));
            visiting.remove(name);
            result
        }
    }
}

/// The Brzozowski derivative: the residual type after `ty` consumes `item`,
/// or `None` if `item` cannot begin `ty`.
fn deriv(schema: &Schema, ty: &Type, item: &ItemRef<'_>, path: &mut Vec<String>) -> Option<Type> {
    match ty {
        Type::Empty => None,
        Type::Scalar { .. } | Type::Attribute { .. } | Type::Element { .. } => {
            match_item(schema, item, ty, path).then_some(Type::Empty)
        }
        Type::Ref(name) => {
            // Atoms: a ref used as an item position. Match the item against
            // the definition (consuming exactly this one item).
            match_item(schema, item, ty, path)
                .then_some(Type::Empty)
                .or_else(|| {
                    // A ref may also name a *sequence* type (e.g. `type Movie =
                    // box_office[...], video_sales[...]` used inline): derive
                    // through the definition.
                    let def = schema.get(name)?;
                    if matches!(
                        def,
                        Type::Element { .. } | Type::Attribute { .. } | Type::Scalar { .. }
                    ) {
                        None // already tried as an atom
                    } else {
                        deriv(schema, def, item, path)
                    }
                })
        }
        Type::Seq(items) => {
            // lint: allow(no-unwrap-in-lib) — Type::seq normalizes, so a Seq node is never empty
            let (first, rest) = items.split_first().expect("Seq invariant: non-empty");
            let rest_ty = Type::seq(rest.iter().cloned());
            let mut alternatives = Vec::new();
            if let Some(d) = deriv(schema, first, item, path) {
                alternatives.push(Type::seq([d, rest_ty.clone()]));
            }
            if nullable(schema, first, &mut BTreeSet::new()) {
                if let Some(d) = deriv(schema, &rest_ty, item, path) {
                    alternatives.push(d);
                }
            }
            if alternatives.is_empty() {
                None
            } else {
                Some(Type::choice(alternatives))
            }
        }
        Type::Choice(items) => {
            let alternatives: Vec<Type> = items
                .iter()
                .filter_map(|t| deriv(schema, t, item, path))
                .collect();
            if alternatives.is_empty() {
                None
            } else {
                Some(Type::choice(alternatives))
            }
        }
        Type::Rep { inner, occurs, .. } => {
            if occurs.is_exhausted() {
                return None;
            }
            let d = deriv(schema, inner, item, path)?;
            Some(Type::seq([
                d,
                Type::rep((**inner).clone(), occurs.decrement()),
            ]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_schema;
    use legodb_xml::parse;

    fn show_schema() -> Schema {
        parse_schema(
            "type Show = show [ @type[ String ], title[ String ], year[ Integer ],
                                Aka{1,10}, Review*, ( Movie | TV ) ]
             type Aka = aka[ String ]
             type Review = review[ ~[ String ] ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]
             type TV = seasons[ Integer ], description[ String ], Episode{0,*}
             type Episode = episode[ name[ String ], guest_director[ String ] ]",
        )
        .unwrap()
    }

    fn check(schema: &Schema, xml: &str) -> bool {
        validate(schema, &parse(xml).unwrap()).is_ok()
    }

    #[test]
    fn accepts_a_valid_movie() {
        let s = show_schema();
        assert!(check(
            &s,
            r#"<show type="Movie"><title>Fugitive, The</title><year>1993</year>
               <aka>Auf der Flucht</aka>
               <box_office>183752965</box_office><video_sales>72450220</video_sales></show>"#,
        ));
    }

    #[test]
    fn accepts_a_valid_tv_show() {
        let s = show_schema();
        assert!(check(
            &s,
            r#"<show type="TV series"><title>X Files, The</title><year>1993</year>
               <aka>Aux frontieres du Reel</aka>
               <seasons>10</seasons><description>A paranoic FBI agent</description>
               <episode><name>Ghost in the Machine</name>
                        <guest_director>Jerrold Freedman</guest_director></episode></show>"#,
        ));
    }

    #[test]
    fn rejects_missing_required_children() {
        let s = show_schema();
        // no aka (min 1), no Movie/TV tail
        assert!(!check(
            &s,
            r#"<show type="Movie"><title>T</title><year>1993</year></show>"#
        ));
    }

    #[test]
    fn rejects_over_max_repetition() {
        let s = parse_schema("type T = t[ Aka{0,2} ]\ntype Aka = aka[ String ]").unwrap();
        assert!(check(&s, "<t><aka>a</aka><aka>b</aka></t>"));
        assert!(!check(&s, "<t><aka>a</aka><aka>b</aka><aka>c</aka></t>"));
    }

    #[test]
    fn rejects_non_integer_content() {
        let s = parse_schema("type T = t[ year[ Integer ] ]").unwrap();
        assert!(check(&s, "<t><year>1993</year></t>"));
        assert!(!check(&s, "<t><year>nineteen</year></t>"));
    }

    #[test]
    fn rejects_wrong_union_mix() {
        let s = show_schema();
        // box_office (movie) followed by seasons (tv) is not in either branch
        assert!(!check(
            &s,
            r#"<show type="x"><title>T</title><year>1993</year><aka>a</aka>
               <box_office>5</box_office><seasons>2</seasons></show>"#,
        ));
    }

    #[test]
    fn wildcard_element_matches_any_name() {
        let s = show_schema();
        assert!(check(
            &s,
            r#"<show type="Movie"><title>T</title><year>1993</year><aka>a</aka>
               <review><nyt>Great.</nyt></review>
               <box_office>5</box_office><video_sales>6</video_sales></show>"#,
        ));
    }

    #[test]
    fn any_except_rejects_excluded_names() {
        let s = parse_schema("type R = review[ ~!nyt[ String ]* ]").unwrap();
        assert!(check(&s, "<review><suntimes>ok</suntimes></review>"));
        assert!(!check(&s, "<review><nyt>ok</nyt></review>"));
    }

    #[test]
    fn recursive_any_element_type_validates_arbitrary_documents() {
        let s = parse_schema("type AnyElement = ~[ (AnyElement | String)* ]").unwrap();
        assert!(check(&s, "<a><b>text</b><c><d/></c>tail</a>"));
    }

    #[test]
    fn optional_string_content_allows_empty_element() {
        let s = parse_schema("type T = t[ String ]").unwrap();
        assert!(check(&s, "<t></t>"));
        assert!(check(&s, "<t>hello</t>"));
    }

    #[test]
    fn integer_content_requires_a_value() {
        let s = parse_schema("type T = t[ Integer ]").unwrap();
        assert!(!check(&s, "<t></t>"));
        assert!(check(&s, "<t>7</t>"));
    }

    #[test]
    fn ref_to_sequence_type_matches_inline() {
        // `Movie` names a sequence, not an element: the ref must expand
        // in place (this is exactly what inline/outline toggles).
        let s = parse_schema(
            "type T = t[ title[ String ], Movie ]
             type Movie = box_office[ Integer ], video_sales[ Integer ]",
        )
        .unwrap();
        assert!(check(
            &s,
            "<t><title>x</title><box_office>1</box_office><video_sales>2</video_sales></t>"
        ));
        assert!(!check(
            &s,
            "<t><title>x</title><box_office>1</box_office></t>"
        ));
    }

    #[test]
    fn attribute_type_mismatch_is_rejected() {
        let s = parse_schema("type T = t[ @n[ Integer ] ]").unwrap();
        assert!(check(&s, r#"<t n="5"/>"#));
        assert!(!check(&s, r#"<t n="five"/>"#));
    }

    #[test]
    fn missing_attribute_is_rejected_and_optional_attr_ok() {
        let s = parse_schema("type T = t[ @n[ String ] ]").unwrap();
        assert!(!check(&s, "<t/>"));
        let s = parse_schema("type T = t[ @n[ String ]? ]").unwrap();
        assert!(check(&s, "<t/>"));
        assert!(check(&s, r#"<t n="x"/>"#));
    }

    /// Replays an element's content through a [`ContentMatcher`] the way a
    /// streaming shredder would: attributes first, then children in order.
    fn matcher_accepts(schema: &Schema, element: &legodb_xml::Element, content: &Type) -> bool {
        let mut m = ContentMatcher::new(schema, content);
        for attr in &element.attributes {
            m.feed_attribute(attr);
        }
        for child in &element.children {
            match child {
                Node::Element(e) => m.feed_element(e),
                Node::Text(t) => m.feed_text(t),
            }
        }
        m.matches()
    }

    #[test]
    fn content_matcher_agrees_with_content_matches() {
        let s = show_schema();
        let docs = [
            r#"<show type="Movie"><title>T</title><year>1993</year><aka>a</aka>
               <box_office>5</box_office><video_sales>6</video_sales></show>"#,
            r#"<show type="Movie"><title>T</title><year>1993</year></show>"#,
            r#"<show type="x"><title>T</title><year>1993</year><aka>a</aka>
               <box_office>5</box_office><seasons>2</seasons></show>"#,
        ];
        let content = match s.get(&TypeName::new("Show")).unwrap() {
            Type::Element { content, .. } => content.clone(),
            other => panic!("unexpected Show definition {other}"),
        };
        for xml in docs {
            let doc = parse(xml).unwrap();
            assert_eq!(
                matcher_accepts(&s, &doc.root, &content),
                content_matches(&s, &doc.root, &content),
                "{xml}"
            );
        }
    }

    #[test]
    fn content_matcher_fails_fast_and_stays_failed() {
        let s = parse_schema("type T = t[ year[ Integer ] ]").unwrap();
        let content = match s.get(&TypeName::new("T")).unwrap() {
            Type::Element { content, .. } => content.clone(),
            other => panic!("unexpected definition {other}"),
        };
        let mut m = ContentMatcher::new(&s, &content);
        assert!(!m.failed());
        assert!(!m.matches(), "year is required");
        let bogus = parse("<t><nope/></t>").unwrap();
        let Node::Element(child) = &bogus.root.children[0] else {
            panic!("expected element child");
        };
        m.feed_element(child);
        assert!(m.failed());
        // Feeding more after failure keeps it failed rather than panicking.
        m.feed_text("later");
        assert!(m.failed() && !m.matches());
    }

    #[test]
    fn verbose_reports_a_path() {
        let s = parse_schema("type T = t[ year[ Integer ] ]").unwrap();
        let doc = parse("<t><year>no</year></t>").unwrap();
        let err = validate_verbose(&s, &doc).unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
