//! Write-ahead log for the durable storage path.
//!
//! ## Frame format
//!
//! The log (`wal.log` inside the database directory) is a sequence of
//! self-delimiting frames:
//!
//! ```text
//! ┌────────────┬──────────────┬──────────────────────┐
//! │ len: u32 LE│ crc: u64 LE  │ payload (len bytes)  │
//! └────────────┴──────────────┴──────────────────────┘
//! ```
//!
//! `crc` is a domain-separated FNV-1a over the payload bytes
//! ([`legodb_util::StableHasher`] with [`WAL_MAGIC`] absorbed first), so
//! the checksum is stable across platforms and runs. The payload is one
//! JSON object rendered through `legodb_util::json::Value` (BTreeMap
//! field order — byte-deterministic) that carries a monotonically
//! increasing LSN plus one logical operation:
//!
//! ```json
//! {"lsn":"7","op":"insert","table":"Show","row":["i:1","s:ER",null]}
//! ```
//!
//! `i64` row values are sigil-encoded as strings (`"i:<decimal>"`) rather
//! than JSON numbers because the reader holds numbers as `f64`, which
//! silently rounds integers past 2^53.
//!
//! ## Torn-tail truncation rule
//!
//! On open the log is scanned front to back. The first frame whose header
//! is short, whose payload runs past end-of-file, or whose checksum does
//! not match ends the scan: everything from that byte offset on is
//! presumed a torn write from a crash and is physically truncated away.
//! A frame whose checksum matches but whose payload fails to decode is
//! **not** truncated — that is post-commit corruption or a software bug,
//! and recovery surfaces it as [`RelationalError::Corrupt`] instead of
//! silently dropping acknowledged data.
//!
//! ## Failpoint sites
//!
//! Every write path threads a deterministic failpoint keyed by LSN so
//! seeded fault injection (`LEGODB_FAULT_SEED`, or
//! `fault::override_for_test`) can simulate crashes:
//!
//! | site | simulated crash |
//! |---|---|
//! | `wal.append` | torn write: only the first half of the frame reaches the log, the WAL poisons itself |
//! | `wal.fsync` | fsync failure at a commit boundary (poisons: durability unknown) |
//! | `wal.truncate` | crash after a checkpoint installs but before the log is reclaimed |

use crate::catalog::{ColumnDef, ColumnStats, ForeignKey, Layout, TableDef};
use crate::error::RelationalError;
use crate::storage::Row;
use crate::types::{SqlType, Value};
use legodb_util::fault::failpoint;
use legodb_util::fs::{DirHandle, LogFile};
use legodb_util::json::{self, Value as JValue};
use legodb_util::{RwLock, StableHasher};
use std::collections::BTreeMap;

/// File name of the log inside the database directory.
pub const WAL_FILE: &str = "wal.log";

/// Domain-separation tag absorbed before the payload when checksumming.
pub const WAL_MAGIC: u64 = 0x4C45_474F_5741_4C31; // "LEGOWAL1"

/// Frame header size: u32 length + u64 checksum.
const FRAME_HEADER: usize = 12;

/// Upper bound on a single payload; anything larger in a length field is
/// treated as a torn header rather than an allocation request.
const MAX_PAYLOAD: u32 = 1 << 30;

/// One logged logical operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table was created.
    CreateTable(TableDef),
    /// A secondary index was created.
    CreateIndex { table: String, column: String },
    /// A row was inserted.
    Insert { table: String, row: Row },
    /// A batch of rows was inserted into one table atomically. The whole
    /// batch lives in a single frame, so one checksum covers all rows: a
    /// crash mid-batch tears the frame and recovery drops the batch
    /// wholly — replay never surfaces a torn batch.
    InsertBatch { table: String, rows: Vec<Row> },
}

/// The write-ahead log: an append-only, checksummed record stream.
#[derive(Debug)]
pub struct Wal {
    dir: DirHandle,
    inner: RwLock<WalInner>,
}

#[derive(Debug)]
struct WalInner {
    log: LogFile,
    next_lsn: u64,
    /// Set after any write failure (injected or real): the physical tail
    /// of the log is unknown, so further appends are refused until the
    /// database is reopened (which re-establishes a clean tail).
    poisoned: bool,
    /// Successful fsyncs issued by [`Wal::commit`] over this handle's
    /// lifetime — instrumentation for the group-commit tests/benchmarks.
    sync_count: u64,
}

impl Wal {
    /// Open (creating if absent) the log in `dir`. Scans existing frames,
    /// truncates the torn tail per the module rule, and returns the
    /// surviving records as `(lsn, record)` pairs in log order.
    pub fn open(dir: &DirHandle) -> Result<(Wal, Vec<(u64, WalRecord)>), RelationalError> {
        let bytes = dir
            .read_opt(WAL_FILE)
            .map_err(|e| io_err("wal open", &e))?
            .unwrap_or_default();
        let (records, keep) = scan_frames(&bytes)?;
        if keep < bytes.len() as u64 {
            dir.set_len(WAL_FILE, keep)
                .map_err(|e| io_err("wal torn-tail truncation", &e))?;
        }
        let log = dir
            .append_log(WAL_FILE)
            .map_err(|e| io_err("wal open for append", &e))?;
        let next_lsn = records.last().map_or(1, |(lsn, _)| lsn + 1);
        let wal = Wal {
            dir: dir.clone(),
            inner: RwLock::new_named(
                WalInner {
                    log,
                    next_lsn,
                    poisoned: false,
                    sync_count: 0,
                },
                "wal.inner",
            ),
        };
        Ok((wal, records))
    }

    /// Append one record, returning its LSN. The record is framed,
    /// checksummed, and written to the OS, but **not** fsync'd — call
    /// [`Wal::commit`] at a commit boundary for durability.
    pub fn append(&self, record: &WalRecord) -> Result<u64, RelationalError> {
        self.append_with(|lsn| encode_record(lsn, record))
    }

    /// Append an insert without cloning the row into a [`WalRecord`]
    /// (the hot path: `Database::insert` logs by reference).
    pub fn append_insert(&self, table: &str, row: &Row) -> Result<u64, RelationalError> {
        self.append_with(|lsn| encode_insert(lsn, table, row))
    }

    /// Append a whole batch of inserts as one frame, by reference
    /// (the hot path: `Database::insert_batch` logs once per batch).
    pub fn append_insert_batch(&self, table: &str, rows: &[Row]) -> Result<u64, RelationalError> {
        self.append_with(|lsn| encode_insert_batch(lsn, table, rows))
    }

    fn append_with(&self, encode: impl FnOnce(u64) -> Vec<u8>) -> Result<u64, RelationalError> {
        let mut inner = self.inner.write();
        if inner.poisoned {
            return Err(RelationalError::WalPoisoned);
        }
        let lsn = inner.next_lsn;
        let frame = encode_frame(&encode(lsn));
        if let Err(fault) = failpoint("wal.append", &lsn.to_string()) {
            // Simulated crash mid-write: half the frame reaches the log,
            // then the "process" dies. Recovery must truncate this tail.
            let torn = &frame[..frame.len() / 2];
            // The WAL is single-writer: the inner guard IS the append
            // serialization, until group commit (ROADMAP item 5) splits
            // enqueue from flush. Same rationale for the other two
            // allows in this file.
            // lint: allow(guard-across-fsync) — single-writer WAL until group commit
            let _ = inner.log.append(torn);
            inner.poisoned = true;
            return Err(io_fault("wal append", &fault));
        }
        // lint: allow(guard-across-fsync) — same single-writer WAL seam as above
        if let Err(e) = inner.log.append(&frame) {
            inner.poisoned = true;
            return Err(io_err("wal append", &e));
        }
        inner.next_lsn = lsn + 1;
        Ok(lsn)
    }

    /// Durably flush all appended records (a commit boundary).
    pub fn commit(&self) -> Result<(), RelationalError> {
        let mut inner = self.inner.write();
        if inner.poisoned {
            return Err(RelationalError::WalPoisoned);
        }
        if let Err(fault) = failpoint("wal.fsync", &inner.next_lsn.to_string()) {
            // A failed fsync leaves durability unknown; refuse further
            // work until reopen re-establishes the real tail.
            inner.poisoned = true;
            return Err(io_fault("wal fsync", &fault));
        }
        // lint: allow(guard-across-fsync) — commit needs a stable tail; single-writer WAL until group commit
        inner.log.sync().map_err(|e| io_err("wal fsync", &e))?;
        inner.sync_count += 1;
        Ok(())
    }

    /// Successful fsyncs issued through this handle (see
    /// `WalInner::sync_count`).
    pub fn sync_count(&self) -> u64 {
        self.inner.read().sync_count
    }

    /// Reclaim the log after a checkpoint has durably captured its
    /// effects. Crashing *before* this point is safe: replay skips
    /// records at or below the checkpoint LSN.
    pub fn truncate(&self) -> Result<(), RelationalError> {
        let inner = self.inner.write();
        failpoint("wal.truncate", &inner.next_lsn.to_string())
            .map_err(|fault| io_fault("wal truncate", &fault))?;
        self.dir
            .set_len(WAL_FILE, 0)
            .map_err(|e| io_err("wal truncate", &e))
    }

    /// Next LSN this log will assign.
    pub fn next_lsn(&self) -> u64 {
        self.inner.read().next_lsn
    }

    /// Reposition the LSN counter (used by `Database::open` so LSNs keep
    /// increasing across a checkpoint that emptied the log).
    pub(crate) fn set_next_lsn(&self, next: u64) {
        self.inner.write().next_lsn = next;
    }

    /// True after a write failure; appends are refused until reopen.
    pub fn is_poisoned(&self) -> bool {
        self.inner.read().poisoned
    }

    /// Bytes currently in the log file.
    pub fn len_bytes(&self) -> Result<u64, RelationalError> {
        self.dir
            .file_len(WAL_FILE)
            .map_err(|e| io_err("wal stat", &e))
    }
}

/// Scan `bytes` as frames. Returns the decoded records and the byte
/// offset of the first torn frame (== `bytes.len()` when the log is
/// clean), i.e. the length the file should be truncated to.
fn scan_frames(bytes: &[u8]) -> Result<(Vec<(u64, WalRecord)>, u64), RelationalError> {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        if off + FRAME_HEADER > bytes.len() {
            return Ok((records, off as u64)); // short header = torn
        }
        let len = u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        let mut crc_bytes = [0u8; 8];
        crc_bytes.copy_from_slice(&bytes[off + 4..off + 12]);
        let crc = u64::from_le_bytes(crc_bytes);
        if len > MAX_PAYLOAD {
            return Ok((records, off as u64)); // absurd length = torn header
        }
        let start = off + FRAME_HEADER;
        let end = start + len as usize;
        if end > bytes.len() {
            return Ok((records, off as u64)); // payload ran past EOF = torn
        }
        let payload = &bytes[start..end];
        if checksum(payload) != crc {
            return Ok((records, off as u64)); // bit rot or torn payload
        }
        // Checksum-valid but undecodable is NOT a torn write: surface it.
        records.push(decode_record(payload)?);
        off = end;
    }
}

/// Domain-separated FNV-1a over a payload.
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(WAL_MAGIC).write_bytes(payload);
    h.finish()
}

/// Wrap a payload in a `[len][crc][payload]` frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&checksum(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Render a record (with its LSN) to payload bytes.
pub fn encode_record(lsn: u64, record: &WalRecord) -> Vec<u8> {
    match record {
        WalRecord::Insert { table, row } => encode_insert(lsn, table, row),
        WalRecord::InsertBatch { table, rows } => encode_insert_batch(lsn, table, rows),
        WalRecord::CreateTable(def) => {
            let mut fields = lsn_fields(lsn, "create_table");
            fields.insert("def".to_string(), table_def_json(def));
            JValue::Object(fields).render().into_bytes()
        }
        WalRecord::CreateIndex { table, column } => {
            let mut fields = lsn_fields(lsn, "create_index");
            fields.insert("table".to_string(), JValue::String(table.clone()));
            fields.insert("column".to_string(), JValue::String(column.clone()));
            JValue::Object(fields).render().into_bytes()
        }
    }
}

/// Render an insert record directly from borrowed parts.
pub fn encode_insert(lsn: u64, table: &str, row: &Row) -> Vec<u8> {
    let mut fields = lsn_fields(lsn, "insert");
    fields.insert("table".to_string(), JValue::String(table.to_string()));
    fields.insert("row".to_string(), row_json(row));
    JValue::Object(fields).render().into_bytes()
}

/// Render a batched-insert record directly from borrowed parts.
pub fn encode_insert_batch(lsn: u64, table: &str, rows: &[Row]) -> Vec<u8> {
    let mut fields = lsn_fields(lsn, "insert_batch");
    fields.insert("table".to_string(), JValue::String(table.to_string()));
    fields.insert(
        "rows".to_string(),
        JValue::Array(rows.iter().map(row_json).collect()),
    );
    JValue::Object(fields).render().into_bytes()
}

fn lsn_fields(lsn: u64, op: &str) -> BTreeMap<String, JValue> {
    let mut fields = BTreeMap::new();
    fields.insert("lsn".to_string(), JValue::String(lsn.to_string()));
    fields.insert("op".to_string(), JValue::String(op.into()));
    fields
}

/// Parse payload bytes back into `(lsn, record)`.
pub fn decode_record(payload: &[u8]) -> Result<(u64, WalRecord), RelationalError> {
    let text = std::str::from_utf8(payload).map_err(|_| corrupt("wal record is not UTF-8"))?;
    let value = json::parse(text).map_err(|e| corrupt(&format!("wal record JSON: {e}")))?;
    let lsn = parse_u64_field(&value, "lsn")?;
    let op = str_field(&value, "op")?;
    let record = match op {
        "create_table" => {
            let def = value
                .get("def")
                .ok_or_else(|| corrupt("create_table record missing def"))?;
            WalRecord::CreateTable(table_def_from_json(def)?)
        }
        "create_index" => WalRecord::CreateIndex {
            table: str_field(&value, "table")?.to_string(),
            column: str_field(&value, "column")?.to_string(),
        },
        "insert" => {
            let row = value
                .get("row")
                .ok_or_else(|| corrupt("insert record missing row"))?;
            WalRecord::Insert {
                table: str_field(&value, "table")?.to_string(),
                row: row_from_json(row)?,
            }
        }
        "insert_batch" => {
            let rows = match value.get("rows") {
                Some(JValue::Array(items)) => items
                    .iter()
                    .map(row_from_json)
                    .collect::<Result<Vec<Row>, _>>()?,
                _ => return Err(corrupt("insert_batch record missing rows array")),
            };
            WalRecord::InsertBatch {
                table: str_field(&value, "table")?.to_string(),
                rows,
            }
        }
        other => return Err(corrupt(&format!("unknown wal op {other:?}"))),
    };
    Ok((lsn, record))
}

// ---------------------------------------------------------------------------
// JSON codecs shared by the WAL and the checkpoint document.
// ---------------------------------------------------------------------------

/// Encode one row value. Integers are sigil-encoded strings so i64
/// precision survives the reader's f64 number representation.
pub fn row_value_json(v: &Value) -> JValue {
    match v {
        Value::Null => JValue::Null,
        Value::Int(n) => JValue::String(format!("i:{n}")),
        Value::Str(s) => JValue::String(format!("s:{s}")),
    }
}

/// Decode one row value.
pub fn row_value_from_json(j: &JValue) -> Result<Value, RelationalError> {
    match j {
        JValue::Null => Ok(Value::Null),
        JValue::String(s) => {
            if let Some(n) = s.strip_prefix("i:") {
                n.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| corrupt(&format!("bad integer literal {n:?}")))
            } else if let Some(text) = s.strip_prefix("s:") {
                Ok(Value::Str(text.to_string()))
            } else {
                Err(corrupt(&format!("row value missing sigil: {s:?}")))
            }
        }
        _ => Err(corrupt("row value must be null or a sigiled string")),
    }
}

/// Encode a whole row.
pub fn row_json(row: &Row) -> JValue {
    JValue::Array(row.iter().map(row_value_json).collect())
}

/// Decode a whole row.
pub fn row_from_json(j: &JValue) -> Result<Row, RelationalError> {
    match j {
        JValue::Array(items) => items.iter().map(row_value_from_json).collect(),
        _ => Err(corrupt("row must be an array")),
    }
}

fn sql_type_from_str(s: &str) -> Result<SqlType, RelationalError> {
    match s {
        "INT" => Ok(SqlType::Int),
        "STRING" => Ok(SqlType::Text),
        _ => {
            let n = s
                .strip_prefix("CHAR(")
                .and_then(|rest| rest.strip_suffix(')'))
                .and_then(|n| n.parse::<u32>().ok())
                .ok_or_else(|| corrupt(&format!("unknown SQL type {s:?}")))?;
            Ok(SqlType::Char(n))
        }
    }
}

fn opt_i64_json(v: Option<i64>) -> JValue {
    match v {
        Some(n) => JValue::String(n.to_string()),
        None => JValue::Null,
    }
}

fn opt_i64_from_json(j: Option<&JValue>, what: &str) -> Result<Option<i64>, RelationalError> {
    match j {
        None | Some(JValue::Null) => Ok(None),
        Some(JValue::String(s)) => s
            .parse::<i64>()
            .map(Some)
            .map_err(|_| corrupt(&format!("bad {what}: {s:?}"))),
        Some(_) => Err(corrupt(&format!("{what} must be a decimal string"))),
    }
}

/// Encode a table definition (columns, key, FKs, statistics).
pub fn table_def_json(def: &TableDef) -> JValue {
    let columns = def
        .columns
        .iter()
        .map(|c| {
            let mut m = BTreeMap::new();
            m.insert("name".to_string(), JValue::String(c.name.clone()));
            m.insert("ty".to_string(), JValue::String(c.ty.to_string()));
            m.insert("nullable".to_string(), JValue::Bool(c.nullable));
            m.insert("avg_width".to_string(), JValue::Number(c.stats.avg_width));
            m.insert(
                "distinct".to_string(),
                c.stats.distinct.map_or(JValue::Null, JValue::Number),
            );
            m.insert("min".to_string(), opt_i64_json(c.stats.min));
            m.insert("max".to_string(), opt_i64_json(c.stats.max));
            m.insert(
                "null_fraction".to_string(),
                JValue::Number(c.stats.null_fraction),
            );
            JValue::Object(m)
        })
        .collect();
    let fks = def
        .foreign_keys
        .iter()
        .map(|fk| {
            let mut m = BTreeMap::new();
            m.insert("column".to_string(), JValue::String(fk.column.clone()));
            m.insert(
                "parent".to_string(),
                JValue::String(fk.parent_table.clone()),
            );
            JValue::Object(m)
        })
        .collect();
    let mut m = BTreeMap::new();
    m.insert("name".to_string(), JValue::String(def.name.clone()));
    m.insert(
        "key".to_string(),
        def.key
            .as_ref()
            .map_or(JValue::Null, |k| JValue::String(k.clone())),
    );
    m.insert("columns".to_string(), JValue::Array(columns));
    m.insert("fks".to_string(), JValue::Array(fks));
    m.insert("rows".to_string(), JValue::Number(def.stats.rows));
    m.insert("layout".to_string(), JValue::String(def.layout.to_string()));
    JValue::Object(m)
}

/// Decode a table definition.
pub fn table_def_from_json(j: &JValue) -> Result<TableDef, RelationalError> {
    let mut def = TableDef::new(str_field(j, "name")?);
    def.key = match j.get("key") {
        None | Some(JValue::Null) => None,
        Some(JValue::String(s)) => Some(s.clone()),
        Some(_) => return Err(corrupt("table key must be a string or null")),
    };
    let columns = match j.get("columns") {
        Some(JValue::Array(items)) => items,
        _ => return Err(corrupt("table def missing columns array")),
    };
    for c in columns {
        let ty = sql_type_from_str(str_field(c, "ty")?)?;
        let nullable = matches!(c.get("nullable"), Some(JValue::Bool(true)));
        let stats = ColumnStats {
            avg_width: num_field(c, "avg_width")?,
            distinct: match c.get("distinct") {
                None | Some(JValue::Null) => None,
                Some(JValue::Number(n)) => Some(*n),
                Some(_) => return Err(corrupt("distinct must be a number or null")),
            },
            min: opt_i64_from_json(c.get("min"), "column min")?,
            max: opt_i64_from_json(c.get("max"), "column max")?,
            null_fraction: num_field(c, "null_fraction")?,
        };
        let mut col = ColumnDef::new(str_field(c, "name")?, ty).with_stats(stats);
        col.nullable = nullable;
        def.columns.push(col);
    }
    let no_fks = Vec::new();
    let fks = match j.get("fks") {
        None => &no_fks,
        Some(JValue::Array(items)) => items,
        Some(_) => return Err(corrupt("fks must be an array")),
    };
    for fk in fks {
        def.foreign_keys.push(ForeignKey {
            column: str_field(fk, "column")?.to_string(),
            parent_table: str_field(fk, "parent")?.to_string(),
        });
    }
    def.stats.rows = num_field(j, "rows")?;
    // Logs written before layouts existed carry no field: default Row,
    // which is exactly what those tables were.
    def.layout = match j.get("layout") {
        None => Layout::Row,
        Some(JValue::String(s)) => {
            Layout::parse(s).ok_or_else(|| corrupt(&format!("unknown table layout {s:?}")))?
        }
        Some(_) => return Err(corrupt("table layout must be a string")),
    };
    Ok(def)
}

/// A required string field of a JSON object.
pub fn str_field<'a>(j: &'a JValue, name: &str) -> Result<&'a str, RelationalError> {
    j.get(name)
        .and_then(JValue::as_str)
        .ok_or_else(|| corrupt(&format!("missing string field {name:?}")))
}

/// A required numeric field of a JSON object.
pub fn num_field(j: &JValue, name: &str) -> Result<f64, RelationalError> {
    j.get(name)
        .and_then(JValue::as_f64)
        .ok_or_else(|| corrupt(&format!("missing numeric field {name:?}")))
}

/// A required decimal-string u64 field (LSNs never round through f64).
pub fn parse_u64_field(j: &JValue, name: &str) -> Result<u64, RelationalError> {
    let s = str_field(j, name)?;
    s.parse::<u64>()
        .map_err(|_| corrupt(&format!("bad u64 field {name:?}: {s:?}")))
}

/// Construct a [`RelationalError::Corrupt`].
pub fn corrupt(context: &str) -> RelationalError {
    RelationalError::Corrupt {
        context: context.to_string(),
    }
}

/// Construct a [`RelationalError::Io`] from any displayable error.
pub fn io_err(context: &str, error: &dyn std::fmt::Display) -> RelationalError {
    RelationalError::Io {
        context: context.to_string(),
        message: error.to_string(),
    }
}

pub(crate) fn io_fault(context: &str, fault: &legodb_util::FaultError) -> RelationalError {
    RelationalError::Io {
        context: context.to_string(),
        message: format!("simulated crash: {fault}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnDef;
    use legodb_util::fault::{override_for_test, FaultConfig, FaultMode};
    use std::path::PathBuf;

    /// Disable env-activated fault injection (the CI fault stage runs the
    /// whole workspace under `LEGODB_FAULT_SEED`) so these deterministic
    /// tests see only the faults they inject themselves.
    fn quiet_faults() -> legodb_util::fault::OverrideGuard {
        override_for_test(FaultConfig {
            seed: 0,
            rate: 0.0,
            mode: FaultMode::Error,
        })
    }

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("legodb-wal-{tag}-{}", std::process::id()))
    }

    fn show_def() -> TableDef {
        let mut def = TableDef::new("Show");
        def.columns = vec![
            ColumnDef::new("Show_id", SqlType::Int),
            ColumnDef::new("title", SqlType::Char(50)),
            ColumnDef::new("year", SqlType::Int).nullable(),
        ];
        def.key = Some("Show_id".into());
        def.stats.rows = 3.0;
        def
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable(show_def()),
            WalRecord::CreateIndex {
                table: "Show".into(),
                column: "year".into(),
            },
            WalRecord::Insert {
                table: "Show".into(),
                row: vec![Value::Int(1), Value::str("The \"X\" Files"), Value::Null],
            },
            WalRecord::Insert {
                table: "Show".into(),
                row: vec![
                    Value::Int(i64::MAX),
                    Value::str("i:looks-like-int"),
                    Value::Int(-5),
                ],
            },
        ]
    }

    #[test]
    fn insert_batch_codec_roundtrips_in_one_frame() {
        let record = WalRecord::InsertBatch {
            table: "Show".into(),
            rows: vec![
                vec![Value::Int(1), Value::str("A"), Value::Null],
                vec![Value::Int(2), Value::str("B"), Value::Int(1993)],
            ],
        };
        let payload = encode_record(9, &record);
        let (lsn, got) = decode_record(&payload).unwrap();
        assert_eq!(lsn, 9);
        assert_eq!(got, record);
        // One frame: the encoded payload is a single JSON object, so one
        // checksum covers the whole batch.
        let frame = encode_frame(&payload);
        let (records, keep) = scan_frames(&frame).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(keep, frame.len() as u64);
    }

    #[test]
    fn torn_batch_frame_is_dropped_wholly() {
        let record = WalRecord::InsertBatch {
            table: "Show".into(),
            rows: (0..50)
                .map(|i| vec![Value::Int(i), Value::str(format!("t{i}")), Value::Null])
                .collect(),
        };
        let mut bytes = encode_frame(&encode_record(1, &record));
        // Tear anywhere inside the frame: every prefix recovers to zero
        // records — never a partial batch.
        for cut in [bytes.len() - 1, bytes.len() / 2, FRAME_HEADER + 3] {
            bytes.truncate(cut);
            let (records, keep) = scan_frames(&bytes).unwrap();
            assert!(records.is_empty(), "cut at {cut} surfaced a torn batch");
            assert_eq!(keep, 0);
        }
    }

    #[test]
    fn record_codec_roundtrips() {
        for (i, record) in sample_records().iter().enumerate() {
            let lsn = i as u64 + 1;
            let payload = encode_record(lsn, record);
            let (got_lsn, got) = decode_record(&payload).unwrap();
            assert_eq!(got_lsn, lsn);
            assert_eq!(&got, record);
        }
    }

    #[test]
    fn table_def_codec_preserves_stats_exactly() {
        let mut def = show_def();
        def.foreign_keys.push(ForeignKey {
            column: "parent_IMDB".into(),
            parent_table: "IMDB".into(),
        });
        def.columns[2].stats = ColumnStats {
            avg_width: 7.25,
            distinct: Some(41.0),
            min: Some(i64::MIN),
            max: Some(i64::MAX),
            null_fraction: 1.0 / 3.0,
        };
        let encoded = table_def_json(&def).render();
        let decoded = table_def_from_json(&json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, def, "catalog must round-trip bit-identically");
        // Byte-determinism: re-encoding the decoded def is identical.
        assert_eq!(table_def_json(&decoded).render(), encoded);
    }

    #[test]
    fn table_def_codec_round_trips_layout_and_defaults_to_row() {
        let mut def = show_def();
        def.layout = Layout::Columnar;
        let encoded = table_def_json(&def).render();
        let decoded = table_def_from_json(&json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, def, "columnar layout must survive the codec");
        assert_eq!(table_def_json(&decoded).render(), encoded);
        // A pre-layout log record (no field) decodes to the row heap.
        let legacy = encoded.replace("\"layout\":\"columnar\",", "");
        assert_ne!(legacy, encoded, "test must actually strip the field");
        let decoded = table_def_from_json(&json::parse(&legacy).unwrap()).unwrap();
        assert_eq!(decoded.layout, Layout::Row);
        // An unknown layout name is corruption, not a silent default.
        let bad = encoded.replace("\"layout\":\"columnar\"", "\"layout\":\"paged\"");
        assert!(matches!(
            table_def_from_json(&json::parse(&bad).unwrap()),
            Err(RelationalError::Corrupt { .. })
        ));
    }

    #[test]
    fn append_reopen_replays_all_records() {
        let _quiet = quiet_faults();
        let root = scratch("roundtrip");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        let expected = sample_records();
        {
            let (wal, existing) = Wal::open(&dir).unwrap();
            assert!(existing.is_empty());
            for r in &expected {
                wal.append(r).unwrap();
            }
            wal.commit().unwrap();
        }
        let (_, replayed) = Wal::open(&dir).unwrap();
        let lsns: Vec<u64> = replayed.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4]);
        let records: Vec<WalRecord> = replayed.into_iter().map(|(_, r)| r).collect();
        assert_eq!(records, expected);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let _quiet = quiet_faults();
        let root = scratch("torn");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        let expected = sample_records();
        {
            let (wal, _) = Wal::open(&dir).unwrap();
            for r in &expected {
                wal.append(r).unwrap();
            }
            wal.commit().unwrap();
        }
        // Tear the last frame in half, as a crashed append would.
        let bytes = dir.read(WAL_FILE).unwrap();
        let clean_len = bytes.len();
        let last_frame = encode_frame(&encode_record(4, &expected[3]));
        let torn_len = clean_len - last_frame.len() / 2;
        dir.set_len(WAL_FILE, torn_len as u64).unwrap();
        let (wal, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 3, "torn frame must be dropped");
        // The file was physically truncated back to the clean prefix...
        assert_eq!(
            dir.file_len(WAL_FILE).unwrap(),
            (clean_len - last_frame.len()) as u64
        );
        // ...and new appends continue from the next LSN.
        assert_eq!(wal.next_lsn(), 4);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checksum_flip_truncates_from_that_frame() {
        let _quiet = quiet_faults();
        let root = scratch("bitrot");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        {
            let (wal, _) = Wal::open(&dir).unwrap();
            for r in &sample_records() {
                wal.append(r).unwrap();
            }
            wal.commit().unwrap();
        }
        let mut bytes = dir.read(WAL_FILE).unwrap();
        // Flip one payload bit in the SECOND frame.
        let first_len =
            FRAME_HEADER + u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        bytes[first_len + FRAME_HEADER + 2] ^= 0x40;
        dir.write_atomic(WAL_FILE, &bytes).unwrap();
        let (_, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(
            replayed.len(),
            1,
            "everything from the corrupt frame on is dropped"
        );
        assert_eq!(dir.file_len(WAL_FILE).unwrap(), first_len as u64);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn injected_append_fault_tears_the_frame_and_poisons() {
        let root = scratch("fault");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        let records = sample_records();
        let survivors;
        {
            let _quiet = quiet_faults();
            let (wal, _) = Wal::open(&dir).unwrap();
            wal.append(&records[0]).unwrap();
            wal.append(&records[1]).unwrap();
            wal.commit().unwrap();
            survivors = 2;
        }
        {
            let _always = override_for_test(FaultConfig::always(7, FaultMode::Error));
            let (wal, _) = Wal::open(&dir).unwrap();
            let err = wal.append(&records[2]).unwrap_err();
            assert!(matches!(err, RelationalError::Io { .. }));
            assert!(wal.is_poisoned());
            // Once poisoned, both appends and commits are refused.
            assert_eq!(wal.append(&records[3]), Err(RelationalError::WalPoisoned));
            assert_eq!(wal.commit(), Err(RelationalError::WalPoisoned));
        }
        // Reopen recovers exactly the pre-crash prefix.
        let _quiet = quiet_faults();
        let (_, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.len(), survivors);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn valid_checksum_bad_payload_is_corruption_not_truncation() {
        let _quiet = quiet_faults();
        let root = scratch("corrupt");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        // A correctly framed record whose payload is not a wal record.
        let frame = encode_frame(b"{\"lsn\":\"1\",\"op\":\"vacuum\"}");
        dir.write_atomic(WAL_FILE, &frame).unwrap();
        let err = Wal::open(&dir).unwrap_err();
        assert!(matches!(err, RelationalError::Corrupt { .. }));
        let _ = std::fs::remove_dir_all(&root);
    }
}
