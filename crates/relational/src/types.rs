//! SQL column types and runtime values.

use std::cmp::Ordering;
use std::fmt;

/// A column's declared SQL type. Mirrors the types the paper's Table 1
/// emits: `INT`, `CHAR(size)`, and `STRING` (unbounded varchar).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit integer (the paper writes `INT`).
    Int,
    /// Fixed-size character data, `CHAR(n)`.
    Char(u32),
    /// Unbounded character data (the paper writes `STRING`).
    Text,
}

impl SqlType {
    /// Bytes a value of this type occupies on a page, used for width
    /// accounting when no measured average is available.
    pub fn default_width(&self) -> f64 {
        match self {
            SqlType::Int => 8.0,
            SqlType::Char(n) => *n as f64,
            SqlType::Text => 32.0,
        }
    }

    /// Does `value` inhabit this type? `Null` inhabits every type
    /// (nullability is checked separately against the column definition).
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (SqlType::Int, Value::Int(_))
                | (SqlType::Char(_) | SqlType::Text, Value::Str(_))
        )
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlType::Int => f.write_str("INT"),
            SqlType::Char(n) => write!(f, "CHAR({n})"),
            SqlType::Text => f.write_str("STRING"),
        }
    }
}

/// A runtime value in a row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Approximate on-page width of this value in bytes.
    pub fn width(&self) -> f64 {
        match self {
            Value::Null => 1.0,
            Value::Int(_) => 8.0,
            Value::Str(s) => s.len() as f64,
        }
    }
}

/// Total order used for index keys and sorting: `Null < Int < Str`.
/// (Distinct from [`Value::sql_cmp`], which is SQL semantics.)
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Null, _) => Ordering::Less,
            (_, Value::Null) => Ordering::Greater,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_admission() {
        assert!(SqlType::Int.admits(&Value::Int(1)));
        assert!(!SqlType::Int.admits(&Value::str("x")));
        assert!(SqlType::Text.admits(&Value::str("x")));
        assert!(SqlType::Char(8).admits(&Value::str("x")));
        assert!(SqlType::Int.admits(&Value::Null));
    }

    #[test]
    fn sql_cmp_is_null_aware() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(2)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("a")), None);
        assert_eq!(
            Value::str("a").sql_cmp(&Value::str("a")),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn total_order_ranks_null_lowest() {
        let mut vals = vec![Value::str("b"), Value::Int(3), Value::Null, Value::Int(1)];
        vals.sort();
        assert_eq!(
            vals,
            vec![Value::Null, Value::Int(1), Value::Int(3), Value::str("b")]
        );
    }

    #[test]
    fn display_quotes_strings_sql_style() {
        assert_eq!(Value::str("o'hara").to_string(), "'o''hara'");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn widths_scale_with_content() {
        assert_eq!(Value::Int(1).width(), 8.0);
        assert_eq!(Value::str("abcd").width(), 4.0);
        assert_eq!(SqlType::Char(50).default_width(), 50.0);
    }
}
