//! The plan executor, with I/O and CPU accounting.
//!
//! Execution is materialized operator-at-a-time (each operator returns its
//! full result), which is simple and sufficient for validating the cost
//! model: the counters in [`ExecCounters`] — pages read, seeks, tuples
//! processed — are the *same quantities* the optimizer's cost model
//! estimates, so estimate-vs-measurement comparisons are direct.

use crate::error::RelationalError;
use crate::plan::{IndexKey, PhysicalPlan};
use crate::storage::{Database, Row};
use crate::types::Value;
use crate::PAGE_SIZE;
use std::collections::HashMap;

/// Work counters accumulated during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecCounters {
    /// Tuples pulled out of base tables.
    pub tuples_read: u64,
    /// Tuples emitted by the plan root.
    pub tuples_output: u64,
    /// Tuples processed by operators (CPU work: filter evaluations, join
    /// probe comparisons, hash insertions).
    pub tuples_processed: u64,
    /// Pages read from base tables (sequential + random).
    pub pages_read: f64,
    /// Random seeks performed (one per scan start, one per index probe).
    pub seeks: u64,
    /// Index probes performed.
    pub index_probes: u64,
    /// Base-table columns touched by scan operators: the row heap always
    /// touches every column of the table; a columnar scan touches only
    /// the columns the predicate and projection reference — this counter
    /// is how projection pushdown over columnar tables is observable.
    pub columns_read: u64,
}

impl ExecCounters {
    /// Merge another counter set into this one (used when summing the work
    /// of several independently executed queries, e.g. a publish workload
    /// compiled into one query per descendant table).
    pub fn absorb(&mut self, other: ExecCounters) {
        self.tuples_read += other.tuples_read;
        self.tuples_output += other.tuples_output;
        self.tuples_processed += other.tuples_processed;
        self.pages_read += other.pages_read;
        self.seeks += other.seeks;
        self.index_probes += other.index_probes;
        self.columns_read += other.columns_read;
    }
}

/// Execute `plan` against `db`, returning the result rows and the work
/// counters.
pub fn run(
    db: &Database,
    plan: &PhysicalPlan,
) -> Result<(Vec<Row>, ExecCounters), RelationalError> {
    let mut counters = ExecCounters::default();
    let rows = execute(db, plan, &mut counters)?;
    counters.tuples_output = rows.len() as u64;
    Ok((rows, counters))
}

fn execute(
    db: &Database,
    plan: &PhysicalPlan,
    counters: &mut ExecCounters,
) -> Result<Vec<Row>, RelationalError> {
    match plan {
        PhysicalPlan::SeqScan {
            table,
            predicate,
            projection,
        } => {
            let t = db.table(table)?;
            counters.seeks += 1;
            let arity = t.def.columns.len();
            // Columns this scan must touch: everything for an unprojected
            // scan, else the projection's columns plus the predicate's.
            let needed: Vec<usize> = match projection {
                None => (0..arity).collect(),
                Some(cols) => {
                    let mut needed = cols.clone();
                    if let Some(p) = predicate {
                        needed.extend(p.referenced_columns());
                    }
                    needed.sort_unstable();
                    needed.dedup();
                    needed
                }
            };
            if let Some(result) = t.columnar_scan(predicate.as_ref(), projection.as_deref()) {
                // Column store: only the needed vectors are read, so the
                // page bill is the width of those columns, not the row.
                let rows_scanned = t.len() as u64;
                let width: f64 = needed.iter().map(|&i| t.def.column_width(i)).sum();
                counters.pages_read += (rows_scanned as f64 * width / PAGE_SIZE).max(1.0);
                counters.columns_read += needed.len() as u64;
                counters.tuples_read += rows_scanned;
                counters.tuples_processed += rows_scanned;
                return result;
            }
            // Row heap: a sequential scan touches every page (and
            // therefore every column) of the table.
            counters.pages_read += (t.len() as f64 * t.def.row_width() / PAGE_SIZE).max(1.0);
            counters.columns_read += arity as u64;
            let mut out = Vec::new();
            let mut err = None;
            t.for_each(|row| {
                if err.is_some() {
                    return;
                }
                counters.tuples_read += 1;
                counters.tuples_processed += 1;
                let keep = match predicate {
                    Some(p) => match p.accepts(row) {
                        Ok(b) => b,
                        Err(e) => {
                            err = Some(e);
                            return;
                        }
                    },
                    None => true,
                };
                if keep {
                    out.push(apply_projection(row, projection));
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            Ok(out)
        }
        PhysicalPlan::IndexScan {
            table,
            column,
            key,
            residual,
            projection,
        } => {
            let t = db.table(table)?;
            let matches = probe_index(db, table, column, key)?;
            counters.seeks += 1;
            counters.index_probes += 1;
            // Index pages (root-to-leaf, flat 2) + one random page per match
            // (unclustered secondary index). Matches reassemble whole rows
            // on either layout, so every column is touched.
            counters.pages_read += 2.0 + matches.len() as f64;
            counters.columns_read += t.def.columns.len() as u64;
            counters.tuples_read += matches.len() as u64;
            let mut out = Vec::new();
            for row in matches {
                counters.tuples_processed += 1;
                let keep = match residual {
                    Some(p) => p.accepts(&row)?,
                    None => true,
                };
                if keep {
                    out.push(apply_projection(&row, projection));
                }
            }
            let _ = t;
            Ok(out)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let rows = execute(db, input, counters)?;
            let mut out = Vec::new();
            for row in rows {
                counters.tuples_processed += 1;
                if predicate.accepts(&row)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysicalPlan::Project { input, columns } => {
            let rows = execute(db, input, counters)?;
            rows.into_iter()
                .map(|row| {
                    columns
                        .iter()
                        .map(|&i| {
                            row.get(i)
                                .cloned()
                                .ok_or(RelationalError::ColumnOutOfRange {
                                    index: i,
                                    width: row.len(),
                                })
                        })
                        .collect()
                })
                .collect()
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let left_rows = execute(db, left, counters)?;
            let right_rows = execute(db, right, counters)?;
            let mut out = Vec::new();
            for l in &left_rows {
                for r in &right_rows {
                    counters.tuples_processed += 1;
                    let mut joined = l.clone();
                    joined.extend(r.iter().cloned());
                    let keep = match predicate {
                        Some(p) => p.accepts(&joined)?,
                        None => true,
                    };
                    if keep {
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
        } => {
            if left_keys.len() != right_keys.len() || left_keys.is_empty() {
                return Err(RelationalError::BadPlan(
                    "hash join requires equal-length, non-empty key lists".into(),
                ));
            }
            let left_rows = execute(db, left, counters)?;
            let right_rows = execute(db, right, counters)?;
            // Build on the right side.
            let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
            for row in &right_rows {
                counters.tuples_processed += 1;
                let key: Vec<Value> = right_keys
                    .iter()
                    .map(|&i| {
                        row.get(i)
                            .cloned()
                            .ok_or(RelationalError::ColumnOutOfRange {
                                index: i,
                                width: row.len(),
                            })
                    })
                    .collect::<Result<_, _>>()?;
                // SQL equality: NULL keys never join.
                if key.iter().any(Value::is_null) {
                    continue;
                }
                table.entry(key).or_default().push(row);
            }
            let mut out = Vec::new();
            for l in &left_rows {
                counters.tuples_processed += 1;
                let key: Vec<Value> = left_keys
                    .iter()
                    .map(|&i| {
                        l.get(i).cloned().ok_or(RelationalError::ColumnOutOfRange {
                            index: i,
                            width: l.len(),
                        })
                    })
                    .collect::<Result<_, _>>()?;
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for r in matches {
                        let mut joined = l.clone();
                        joined.extend(r.iter().cloned());
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }
        PhysicalPlan::IndexJoin {
            left,
            table,
            column,
            left_key,
            residual,
        } => {
            let left_rows = execute(db, left, counters)?;
            let mut out = Vec::new();
            for l in &left_rows {
                let key = l
                    .get(*left_key)
                    .cloned()
                    .ok_or(RelationalError::ColumnOutOfRange {
                        index: *left_key,
                        width: l.len(),
                    })?;
                counters.index_probes += 1;
                counters.seeks += 1;
                if key.is_null() {
                    continue;
                }
                let matches = probe_index(db, table, column, &IndexKey::Eq(key))?;
                counters.pages_read += 2.0 + matches.len() as f64;
                counters.tuples_read += matches.len() as u64;
                for r in matches {
                    counters.tuples_processed += 1;
                    let mut joined = l.clone();
                    joined.extend(r);
                    let keep = match residual {
                        Some(p) => p.accepts(&joined)?,
                        None => true,
                    };
                    if keep {
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }
        PhysicalPlan::Union { inputs } => {
            let mut out = Vec::new();
            let mut arity: Option<usize> = None;
            for input in inputs {
                let rows = execute(db, input, counters)?;
                if let Some(first) = rows.first() {
                    match arity {
                        None => arity = Some(first.len()),
                        Some(a) if a != first.len() => {
                            return Err(RelationalError::BadPlan(format!(
                                "union arity mismatch: {a} vs {}",
                                first.len()
                            )))
                        }
                        _ => {}
                    }
                }
                out.extend(rows);
            }
            Ok(out)
        }
    }
}

fn probe_index(
    db: &Database,
    table: &str,
    column: &str,
    key: &IndexKey,
) -> Result<Vec<Row>, RelationalError> {
    let t = db.table(table)?;
    if !t.has_index(column) {
        t.create_index(column)?; // auto-build: the optimizer decided an index exists
    }
    let rows = match key {
        IndexKey::Eq(v) => t.index_lookup(column, v),
        IndexKey::Range { lo, hi } => t.index_range(column, lo.as_ref(), hi.as_ref()),
    };
    rows.ok_or_else(|| RelationalError::UnknownColumn {
        table: table.to_string(),
        column: column.to_string(),
    })
}

fn apply_projection(row: &Row, projection: &Option<Vec<usize>>) -> Row {
    match projection {
        None => row.clone(),
        Some(cols) => cols
            .iter()
            .map(|&i| row.get(i).cloned().unwrap_or(Value::Null))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, TableDef};
    use crate::expr::{CmpOp, Expr};
    use crate::types::SqlType;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let mut show = TableDef::new("Show");
        show.columns = vec![
            ColumnDef::new("Show_id", SqlType::Int),
            ColumnDef::new("title", SqlType::Text),
            ColumnDef::new("year", SqlType::Int),
        ];
        db.create_table(show).unwrap();
        let mut aka = TableDef::new("Aka");
        aka.columns = vec![
            ColumnDef::new("Aka_id", SqlType::Int),
            ColumnDef::new("aka", SqlType::Text),
            ColumnDef::new("parent_Show", SqlType::Int),
        ];
        db.create_table(aka).unwrap();
        for (id, title, year) in [
            (1, "The Fugitive", 1993),
            (2, "X Files", 1993),
            (3, "ER", 1994),
        ] {
            db.insert(
                "Show",
                vec![Value::Int(id), Value::str(title), Value::Int(year)],
            )
            .unwrap();
        }
        for (id, aka, parent) in [
            (1, "Auf der Flucht", 1),
            (2, "Le Fugitif", 1),
            (3, "Aux frontieres", 2),
        ] {
            db.insert(
                "Aka",
                vec![Value::Int(id), Value::str(aka), Value::Int(parent)],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn seq_scan_with_filter_and_projection() {
        let db = sample_db();
        let plan = PhysicalPlan::SeqScan {
            table: "Show".into(),
            predicate: Some(Expr::cmp(CmpOp::Eq, 2, 1993i64)),
            projection: Some(vec![1]),
        };
        let (rows, counters) = run(&db, &plan).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::str("The Fugitive")]);
        assert_eq!(counters.tuples_read, 3);
        assert_eq!(counters.tuples_output, 2);
        assert!(counters.pages_read >= 1.0);
        assert_eq!(counters.seeks, 1);
    }

    #[test]
    fn index_scan_equality() {
        let db = sample_db();
        let plan = PhysicalPlan::IndexScan {
            table: "Show".into(),
            column: "year".into(),
            key: IndexKey::Eq(Value::Int(1994)),
            residual: None,
            projection: None,
        };
        let (rows, counters) = run(&db, &plan).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::str("ER"));
        assert_eq!(counters.index_probes, 1);
        assert_eq!(counters.tuples_read, 1);
    }

    #[test]
    fn index_scan_range() {
        let db = sample_db();
        let plan = PhysicalPlan::IndexScan {
            table: "Show".into(),
            column: "year".into(),
            key: IndexKey::Range {
                lo: Some(Value::Int(1993)),
                hi: Some(Value::Int(1993)),
            },
            residual: None,
            projection: None,
        };
        let (rows, _) = run(&db, &plan).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn hash_join_parent_child() {
        let db = sample_db();
        // Aka.parent_Show = Show.Show_id
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::scan("Show")),
            right: Box::new(PhysicalPlan::scan("Aka")),
            left_keys: vec![0],
            right_keys: vec![2],
        };
        let (rows, _) = run(&db, &plan).unwrap();
        assert_eq!(rows.len(), 3); // two akas for show 1, one for show 2
        assert_eq!(rows[0].len(), 6);
    }

    #[test]
    fn nested_loop_join_with_predicate_matches_hash_join() {
        let db = sample_db();
        let nl = PhysicalPlan::NestedLoopJoin {
            left: Box::new(PhysicalPlan::scan("Show")),
            right: Box::new(PhysicalPlan::scan("Aka")),
            predicate: Some(Expr::col_eq_col(0, 5)),
        };
        let hj = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::scan("Show")),
            right: Box::new(PhysicalPlan::scan("Aka")),
            left_keys: vec![0],
            right_keys: vec![2],
        };
        let (mut r1, _) = run(&db, &nl).unwrap();
        let (mut r2, _) = run(&db, &hj).unwrap();
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2);
    }

    #[test]
    fn index_join_probes_per_left_row() {
        let db = sample_db();
        let plan = PhysicalPlan::IndexJoin {
            left: Box::new(PhysicalPlan::SeqScan {
                table: "Show".into(),
                predicate: Some(Expr::cmp(CmpOp::Eq, 1, "The Fugitive")),
                projection: None,
            }),
            table: "Aka".into(),
            column: "parent_Show".into(),
            left_key: 0,
            residual: None,
        };
        let (rows, counters) = run(&db, &plan).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(counters.index_probes, 1);
    }

    #[test]
    fn union_concatenates() {
        let db = sample_db();
        let plan = PhysicalPlan::Union {
            inputs: vec![PhysicalPlan::scan("Show"), PhysicalPlan::scan("Show")],
        };
        let (rows, _) = run(&db, &plan).unwrap();
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn union_arity_mismatch_is_rejected() {
        let db = sample_db();
        let plan = PhysicalPlan::Union {
            inputs: vec![
                PhysicalPlan::scan("Show"),
                PhysicalPlan::Project {
                    input: Box::new(PhysicalPlan::scan("Show")),
                    columns: vec![0],
                },
            ],
        };
        assert!(matches!(run(&db, &plan), Err(RelationalError::BadPlan(_))));
    }

    #[test]
    fn hash_join_never_matches_null_keys() {
        let mut db = Database::new();
        let mut t = TableDef::new("T");
        t.columns = vec![ColumnDef::new("k", SqlType::Int).nullable()];
        db.create_table(t).unwrap();
        db.insert("T", vec![Value::Null]).unwrap();
        db.insert("T", vec![Value::Int(1)]).unwrap();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::scan("T")),
            right: Box::new(PhysicalPlan::scan("T")),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        let (rows, _) = run(&db, &plan).unwrap();
        assert_eq!(rows.len(), 1); // only Int(1) joins with itself
    }

    #[test]
    fn bad_hash_join_keys_are_rejected() {
        let db = sample_db();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::scan("Show")),
            right: Box::new(PhysicalPlan::scan("Aka")),
            left_keys: vec![],
            right_keys: vec![],
        };
        assert!(matches!(run(&db, &plan), Err(RelationalError::BadPlan(_))));
    }

    #[test]
    fn columnar_seq_scan_matches_row_scan_and_counts_columns() {
        use crate::catalog::Layout;
        // The same data loaded into a columnar Show table.
        let mut cdb = Database::new();
        let mut show = TableDef::new("Show").with_layout(Layout::Columnar);
        show.columns = vec![
            ColumnDef::new("Show_id", SqlType::Int),
            ColumnDef::new("title", SqlType::Text),
            ColumnDef::new("year", SqlType::Int),
        ];
        cdb.create_table(show).unwrap();
        for (id, title, year) in [
            (1, "The Fugitive", 1993),
            (2, "X Files", 1993),
            (3, "ER", 1994),
        ] {
            cdb.insert(
                "Show",
                vec![Value::Int(id), Value::str(title), Value::Int(year)],
            )
            .unwrap();
        }
        let rdb = sample_db();
        let plan = PhysicalPlan::SeqScan {
            table: "Show".into(),
            predicate: Some(Expr::cmp(CmpOp::Eq, 2, 1993i64)),
            projection: Some(vec![1]),
        };
        let (crows, ccount) = run(&cdb, &plan).unwrap();
        let (rrows, rcount) = run(&rdb, &plan).unwrap();
        assert_eq!(crows, rrows, "layout must never change results");
        // Projection pushdown observability: the columnar scan touched
        // only {title, year}; the row heap touched all three columns.
        assert_eq!(ccount.columns_read, 2);
        assert_eq!(rcount.columns_read, 3);
        assert!(ccount.pages_read <= rcount.pages_read);
        // Index scans reconstruct identical rows from either layout.
        let plan = PhysicalPlan::IndexScan {
            table: "Show".into(),
            column: "year".into(),
            key: IndexKey::Eq(Value::Int(1994)),
            residual: None,
            projection: None,
        };
        let (crows, _) = run(&cdb, &plan).unwrap();
        let (rrows, _) = run(&rdb, &plan).unwrap();
        assert_eq!(crows, rrows);
    }

    #[test]
    fn filter_and_project_operators() {
        let db = sample_db();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::scan("Show")),
                predicate: Expr::cmp(CmpOp::Gt, 2, 1993i64),
            }),
            columns: vec![1, 2],
        };
        let (rows, _) = run(&db, &plan).unwrap();
        assert_eq!(rows, vec![vec![Value::str("ER"), Value::Int(1994)]]);
    }
}
