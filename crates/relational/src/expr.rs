//! Scalar expressions over rows: column references (by position), literals,
//! comparisons, and boolean connectives with SQL three-valued logic.

use crate::error::RelationalError;
use crate::types::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A scalar expression evaluated against one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The value of the row's `i`-th column.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Binary comparison (SQL semantics: NULL operands yield unknown).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Conjunction (empty = TRUE).
    And(Vec<Expr>),
    /// Disjunction (empty = FALSE).
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `IS NULL`.
    IsNull(Box<Expr>),
}

/// Three-valued logic outcome of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// TRUE
    True,
    /// FALSE
    False,
    /// UNKNOWN (NULL comparison)
    Unknown,
}

impl Expr {
    /// Shorthand: `col(i) op literal`.
    pub fn cmp(op: CmpOp, column: usize, value: impl Into<Value>) -> Expr {
        Expr::Cmp {
            op,
            left: Box::new(Expr::Column(column)),
            right: Box::new(Expr::Literal(value.into())),
        }
    }

    /// Shorthand: equality between two columns (a join predicate once both
    /// sides are concatenated into one row).
    pub fn col_eq_col(left: usize, right: usize) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(Expr::Column(left)),
            right: Box::new(Expr::Column(right)),
        }
    }

    /// Evaluate to a value. Comparisons return `Int(1)`/`Int(0)`/`Null`.
    pub fn eval(&self, row: &[Value]) -> Result<Value, RelationalError> {
        Ok(match self.eval_truth(row)? {
            Some(t) => match t {
                Truth::True => Value::Int(1),
                Truth::False => Value::Int(0),
                Truth::Unknown => Value::Null,
            },
            None => self.eval_scalar(row)?,
        })
    }

    fn eval_scalar(&self, row: &[Value]) -> Result<Value, RelationalError> {
        match self {
            Expr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or(RelationalError::ColumnOutOfRange {
                    index: *i,
                    width: row.len(),
                }),
            Expr::Literal(v) => Ok(v.clone()),
            _ => unreachable!("boolean expressions handled by eval_truth"),
        }
    }

    /// Evaluate as a predicate in three-valued logic; `None` means the
    /// expression is scalar (column/literal), not boolean.
    fn eval_truth(&self, row: &[Value]) -> Result<Option<Truth>, RelationalError> {
        Ok(Some(match self {
            Expr::Column(_) | Expr::Literal(_) => return Ok(None),
            Expr::Cmp { op, left, right } => {
                let l = left.eval_scalar_or_truth(row)?;
                let r = right.eval_scalar_or_truth(row)?;
                match l.sql_cmp(&r) {
                    Some(ord) => {
                        if op.test(ord) {
                            Truth::True
                        } else {
                            Truth::False
                        }
                    }
                    None => Truth::Unknown,
                }
            }
            Expr::And(items) => {
                let mut result = Truth::True;
                for item in items {
                    match item.as_truth(row)? {
                        Truth::False => return Ok(Some(Truth::False)),
                        Truth::Unknown => result = Truth::Unknown,
                        Truth::True => {}
                    }
                }
                result
            }
            Expr::Or(items) => {
                let mut result = Truth::False;
                for item in items {
                    match item.as_truth(row)? {
                        Truth::True => return Ok(Some(Truth::True)),
                        Truth::Unknown => result = Truth::Unknown,
                        Truth::False => {}
                    }
                }
                result
            }
            Expr::Not(inner) => match inner.as_truth(row)? {
                Truth::True => Truth::False,
                Truth::False => Truth::True,
                Truth::Unknown => Truth::Unknown,
            },
            Expr::IsNull(inner) => {
                let v = inner.eval_scalar_or_truth(row)?;
                if v.is_null() {
                    Truth::True
                } else {
                    Truth::False
                }
            }
        }))
    }

    fn eval_scalar_or_truth(&self, row: &[Value]) -> Result<Value, RelationalError> {
        self.eval(row)
    }

    fn as_truth(&self, row: &[Value]) -> Result<Truth, RelationalError> {
        match self.eval_truth(row)? {
            Some(t) => Ok(t),
            None => Ok(match self.eval_scalar(row)? {
                Value::Null => Truth::Unknown,
                Value::Int(0) => Truth::False,
                _ => Truth::True,
            }),
        }
    }

    /// Does this predicate accept the row? (UNKNOWN rejects, as in SQL
    /// `WHERE`.)
    pub fn accepts(&self, row: &[Value]) -> Result<bool, RelationalError> {
        Ok(self.as_truth(row)? == Truth::True)
    }

    /// Shift every column reference by `delta` (used when gluing rows
    /// together for joins).
    pub fn shift_columns(&self, delta: usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(i + delta),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Cmp { op, left, right } => Expr::Cmp {
                op: *op,
                left: Box::new(left.shift_columns(delta)),
                right: Box::new(right.shift_columns(delta)),
            },
            Expr::And(items) => Expr::And(items.iter().map(|e| e.shift_columns(delta)).collect()),
            Expr::Or(items) => Expr::Or(items.iter().map(|e| e.shift_columns(delta)).collect()),
            Expr::Not(inner) => Expr::Not(Box::new(inner.shift_columns(delta))),
            Expr::IsNull(inner) => Expr::IsNull(Box::new(inner.shift_columns(delta))),
        }
    }

    /// All column indexes referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Literal(_) => {}
            Expr::Cmp { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(items) | Expr::Or(items) => {
                for item in items {
                    item.collect_columns(out);
                }
            }
            Expr::Not(inner) | Expr::IsNull(inner) => inner.collect_columns(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![Value::Int(1993), Value::str("The Fugitive"), Value::Null]
    }

    #[test]
    fn equality_on_columns_and_literals() {
        let e = Expr::cmp(CmpOp::Eq, 0, 1993i64);
        assert!(e.accepts(&row()).unwrap());
        let e = Expr::cmp(CmpOp::Eq, 1, "The Fugitive");
        assert!(e.accepts(&row()).unwrap());
        let e = Expr::cmp(CmpOp::Eq, 1, "Other");
        assert!(!e.accepts(&row()).unwrap());
    }

    #[test]
    fn range_comparisons() {
        assert!(Expr::cmp(CmpOp::Lt, 0, 2000i64).accepts(&row()).unwrap());
        assert!(Expr::cmp(CmpOp::Ge, 0, 1993i64).accepts(&row()).unwrap());
        assert!(!Expr::cmp(CmpOp::Gt, 0, 1993i64).accepts(&row()).unwrap());
    }

    #[test]
    fn null_comparisons_are_unknown_and_rejected() {
        let e = Expr::cmp(CmpOp::Eq, 2, 5i64);
        assert!(!e.accepts(&row()).unwrap());
        let e = Expr::cmp(CmpOp::Ne, 2, 5i64);
        assert!(!e.accepts(&row()).unwrap()); // NULL <> 5 is UNKNOWN
    }

    #[test]
    fn is_null_detects_nulls() {
        assert!(Expr::IsNull(Box::new(Expr::Column(2)))
            .accepts(&row())
            .unwrap());
        assert!(!Expr::IsNull(Box::new(Expr::Column(0)))
            .accepts(&row())
            .unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let null_cmp = Expr::cmp(CmpOp::Eq, 2, 1i64); // UNKNOWN
        let true_cmp = Expr::cmp(CmpOp::Eq, 0, 1993i64);
        let false_cmp = Expr::cmp(CmpOp::Eq, 0, 0i64);
        // UNKNOWN AND TRUE = UNKNOWN (rejected)
        assert!(!Expr::And(vec![null_cmp.clone(), true_cmp.clone()])
            .accepts(&row())
            .unwrap());
        // UNKNOWN OR TRUE = TRUE
        assert!(Expr::Or(vec![null_cmp.clone(), true_cmp])
            .accepts(&row())
            .unwrap());
        // UNKNOWN OR FALSE = UNKNOWN (rejected)
        assert!(!Expr::Or(vec![null_cmp.clone(), false_cmp])
            .accepts(&row())
            .unwrap());
        // NOT UNKNOWN = UNKNOWN (rejected)
        assert!(!Expr::Not(Box::new(null_cmp)).accepts(&row()).unwrap());
    }

    #[test]
    fn empty_connectives() {
        assert!(Expr::And(vec![]).accepts(&row()).unwrap());
        assert!(!Expr::Or(vec![]).accepts(&row()).unwrap());
    }

    #[test]
    fn column_out_of_range_is_an_error() {
        let e = Expr::Column(9);
        assert!(matches!(
            e.eval(&row()),
            Err(RelationalError::ColumnOutOfRange { index: 9, .. })
        ));
    }

    #[test]
    fn shift_columns_moves_references() {
        let e = Expr::col_eq_col(0, 2).shift_columns(5);
        assert_eq!(e.referenced_columns(), vec![5, 7]);
    }

    #[test]
    fn referenced_columns_deduplicates() {
        let e = Expr::And(vec![
            Expr::cmp(CmpOp::Eq, 1, 1i64),
            Expr::cmp(CmpOp::Lt, 1, 9i64),
        ]);
        assert_eq!(e.referenced_columns(), vec![1]);
    }
}
