//! The column store: one typed vector per column plus a null bitmap.
//!
//! A [`ColumnStore`] is the columnar twin of the row heap in
//! `storage.rs`: the same logical table (positional rows, same
//! arity/typing rules) decomposed into per-column vectors, so a scan that
//! references `k` of `n` columns touches only those `k` vectors. NULLs
//! are recorded in a per-column bitmap; the data vector carries a
//! placeholder at null positions so every vector stays positionally
//! aligned with the row id.
//!
//! Determinism contract: everything in this module is `Vec`-ordered by
//! row id and column position — no hashed collections — because column
//! order feeds both the snapshot/checkpoint byte format and the layout
//! cost model (see the `deterministic-collections` lint rule, which
//! covers this file).

use crate::catalog::TableDef;
use crate::storage::Row;
use crate::types::{SqlType, Value};

/// The typed values of one column, positionally aligned with row ids.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// `INT` columns: fixed 8-byte integers.
    Int(Vec<i64>),
    /// `CHAR(n)` / `STRING` columns.
    Str(Vec<String>),
}

impl ColumnData {
    fn with_capacity_for(ty: SqlType) -> ColumnData {
        match ty {
            SqlType::Int => ColumnData::Int(Vec::new()),
            SqlType::Char(_) | SqlType::Text => ColumnData::Str(Vec::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }
}

/// One column: typed data + null bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnVector {
    data: ColumnData,
    /// Bit `i` set ⇒ row `i` is NULL (the data vector holds a
    /// placeholder there to preserve alignment).
    nulls: Vec<u64>,
}

impl ColumnVector {
    fn new(ty: SqlType) -> ColumnVector {
        ColumnVector {
            data: ColumnData::with_capacity_for(ty),
            nulls: Vec::new(),
        }
    }

    /// The typed data vector (placeholders at null positions).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Is row `i` NULL in this column?
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls
            .get(i / 64)
            .is_some_and(|word| word & (1u64 << (i % 64)) != 0)
    }

    fn set_null(&mut self, i: usize) {
        let word = i / 64;
        if self.nulls.len() <= word {
            self.nulls.resize(word + 1, 0);
        }
        self.nulls[word] |= 1u64 << (i % 64);
    }

    fn push(&mut self, value: &Value) {
        let i = self.data.len();
        match (&mut self.data, value) {
            (ColumnData::Int(v), Value::Int(n)) => v.push(*n),
            (ColumnData::Str(v), Value::Str(s)) => v.push(s.clone()),
            (ColumnData::Int(v), _) => {
                v.push(0);
                self.set_null(i);
            }
            (ColumnData::Str(v), _) => {
                v.push(String::new());
                self.set_null(i);
            }
        }
    }

    /// The value at row `i`, reassembled.
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => v.get(i).map_or(Value::Null, |&n| Value::Int(n)),
            ColumnData::Str(v) => v.get(i).map_or(Value::Null, |s| Value::Str(s.clone())),
        }
    }

    /// Bytes materialized by this column vector: data + null bitmap.
    pub fn materialized_bytes(&self) -> f64 {
        let data = match &self.data {
            ColumnData::Int(v) => 8.0 * v.len() as f64,
            ColumnData::Str(v) => v.iter().map(|s| s.len() as f64).sum(),
        };
        data + 8.0 * self.nulls.len() as f64
    }
}

/// A columnar table body: one [`ColumnVector`] per [`TableDef`] column.
///
/// Rows are identified by their insertion position, exactly as in the row
/// heap, so secondary indexes (which store row ids) work unchanged on
/// either layout.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStore {
    columns: Vec<ColumnVector>,
    len: usize,
}

impl ColumnStore {
    /// An empty store shaped for `def`'s columns.
    pub fn new(def: &TableDef) -> ColumnStore {
        ColumnStore {
            columns: def
                .columns
                .iter()
                .map(|c| ColumnVector::new(c.ty))
                .collect(),
            len: 0,
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of column vectors materialized.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// One column vector by position.
    pub fn column(&self, i: usize) -> Option<&ColumnVector> {
        self.columns.get(i)
    }

    /// Append one row. The caller (the `Table` facade) has already
    /// validated arity, types, and NOT NULL constraints; a value a vector
    /// cannot hold is stored as NULL.
    pub fn push(&mut self, row: &Row) {
        for (vector, value) in self.columns.iter_mut().zip(row) {
            vector.push(value);
        }
        self.len += 1;
    }

    /// The value at (`row`, `col`); NULL when either is out of range
    /// (matching the row executor's permissive projection).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns.get(col).map_or(Value::Null, |c| c.value(row))
    }

    /// Reassemble the full row at position `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Reassemble every row (the columnar `scan`).
    pub fn rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Total bytes materialized across all column vectors.
    pub fn materialized_bytes(&self) -> f64 {
        self.columns
            .iter()
            .map(ColumnVector::materialized_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnDef;

    fn def() -> TableDef {
        let mut def = TableDef::new("Show");
        def.columns = vec![
            ColumnDef::new("Show_id", SqlType::Int),
            ColumnDef::new("title", SqlType::Text),
            ColumnDef::new("year", SqlType::Int).nullable(),
        ];
        def
    }

    #[test]
    fn push_and_reassemble_rows() {
        let mut s = ColumnStore::new(&def());
        assert!(s.is_empty());
        s.push(&vec![Value::Int(1), Value::str("ER"), Value::Int(1994)]);
        s.push(&vec![Value::Int(2), Value::str("X Files"), Value::Null]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.column_count(), 3);
        assert_eq!(
            s.row(0),
            vec![Value::Int(1), Value::str("ER"), Value::Int(1994)]
        );
        assert_eq!(
            s.row(1),
            vec![Value::Int(2), Value::str("X Files"), Value::Null]
        );
        assert_eq!(s.rows().len(), 2);
    }

    #[test]
    fn null_bitmap_tracks_nulls_past_one_word() {
        let mut s = ColumnStore::new(&def());
        for i in 0..130 {
            let year = if i % 3 == 0 {
                Value::Null
            } else {
                Value::Int(1990 + i)
            };
            s.push(&vec![Value::Int(i), Value::str(format!("t{i}")), year]);
        }
        for i in 0..130usize {
            let got = s.value(i, 2);
            if i % 3 == 0 {
                assert_eq!(got, Value::Null, "row {i}");
            } else {
                assert_eq!(got, Value::Int(1990 + i as i64), "row {i}");
            }
        }
    }

    #[test]
    fn out_of_range_access_yields_null() {
        let mut s = ColumnStore::new(&def());
        s.push(&vec![Value::Int(1), Value::str("t"), Value::Null]);
        assert_eq!(s.value(0, 99), Value::Null);
        assert_eq!(s.value(99, 0), Value::Null);
    }

    #[test]
    fn materialized_bytes_counts_data_and_bitmaps() {
        let mut s = ColumnStore::new(&def());
        s.push(&vec![Value::Int(1), Value::str("abcd"), Value::Null]);
        // Int col: 8 bytes; title: 4 bytes; year: 8 (placeholder) + one
        // bitmap word (8 bytes).
        assert!((s.materialized_bytes() - (8.0 + 4.0 + 8.0 + 8.0)).abs() < 1e-9);
    }
}
