//! The in-memory storage engine: heap tables with optional ordered
//! (B-tree) secondary indexes.
//!
//! Tables are internally locked with `legodb_util::RwLock` (a
//! poison-tolerant wrapper over `std::sync::RwLock` with direct-guard
//! acquisition) so a shared `&Database` can be read from multiple threads —
//! the LegoDB greedy search evaluates candidate configurations in parallel.

use crate::catalog::{Catalog, ColumnStats, TableDef};
use crate::error::RelationalError;
use crate::types::Value;
use legodb_util::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;

/// A row: one value per column of the owning table.
pub type Row = Vec<Value>;

/// A table: definition + rows + secondary indexes.
#[derive(Debug)]
pub struct Table {
    /// The table definition (columns, key, statistics).
    pub def: TableDef,
    rows: RwLock<Vec<Row>>,
    indexes: RwLock<HashMap<String, BTreeMap<Value, Vec<usize>>>>,
}

impl Table {
    /// An empty table for a definition.
    pub fn new(def: TableDef) -> Table {
        Table {
            def,
            rows: RwLock::new(Vec::new()),
            indexes: RwLock::new(HashMap::new()),
        }
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert one row, enforcing arity, types, and NOT NULL constraints.
    pub fn insert(&self, row: Row) -> Result<(), RelationalError> {
        if row.len() != self.def.columns.len() {
            return Err(RelationalError::ArityMismatch {
                table: self.def.name.clone(),
                expected: self.def.columns.len(),
                got: row.len(),
            });
        }
        for (value, col) in row.iter().zip(&self.def.columns) {
            if value.is_null() && !col.nullable {
                return Err(RelationalError::NullViolation {
                    table: self.def.name.clone(),
                    column: col.name.clone(),
                });
            }
            if !col.ty.admits(value) {
                return Err(RelationalError::TypeMismatch {
                    table: self.def.name.clone(),
                    column: col.name.clone(),
                    value: value.to_string(),
                });
            }
        }
        let mut rows = self.rows.write();
        let row_id = rows.len();
        let mut indexes = self.indexes.write();
        for (column, index) in indexes.iter_mut() {
            let ci =
                self.def
                    .column_index(column)
                    .ok_or_else(|| RelationalError::UnknownColumn {
                        table: self.def.name.clone(),
                        column: column.clone(),
                    })?;
            index.entry(row[ci].clone()).or_default().push(row_id);
        }
        rows.push(row);
        Ok(())
    }

    /// Build an ordered secondary index on `column` (idempotent).
    pub fn create_index(&self, column: &str) -> Result<(), RelationalError> {
        let ci = self
            .def
            .column_index(column)
            .ok_or_else(|| RelationalError::UnknownColumn {
                table: self.def.name.clone(),
                column: column.to_string(),
            })?;
        let mut indexes = self.indexes.write();
        if indexes.contains_key(column) {
            return Ok(());
        }
        let rows = self.rows.read();
        let mut index: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for (row_id, row) in rows.iter().enumerate() {
            index.entry(row[ci].clone()).or_default().push(row_id);
        }
        indexes.insert(column.to_string(), index);
        Ok(())
    }

    /// Is there an index on `column`?
    pub fn has_index(&self, column: &str) -> bool {
        self.indexes.read().contains_key(column)
    }

    /// Snapshot all rows (cloned). The executor's sequential scan.
    pub fn scan(&self) -> Vec<Row> {
        self.rows.read().clone()
    }

    /// Visit all rows without cloning the whole table.
    pub fn for_each(&self, mut f: impl FnMut(&Row)) {
        for row in self.rows.read().iter() {
            f(row);
        }
    }

    /// Rows whose `column` equals `key`, via the index. Returns `None` if no
    /// index exists on that column.
    pub fn index_lookup(&self, column: &str, key: &Value) -> Option<Vec<Row>> {
        let indexes = self.indexes.read();
        let index = indexes.get(column)?;
        let rows = self.rows.read();
        Some(
            index
                .get(key)
                .map(|ids| ids.iter().map(|&i| rows[i].clone()).collect())
                .unwrap_or_default(),
        )
    }

    /// Rows whose `column` lies in `[lo, hi]` (inclusive bounds; `None` is
    /// unbounded), via the index.
    pub fn index_range(
        &self,
        column: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<Vec<Row>> {
        let indexes = self.indexes.read();
        let index = indexes.get(column)?;
        let rows = self.rows.read();
        let lower = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let upper = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let mut out = Vec::new();
        for (_, ids) in index.range((lower, upper)) {
            out.extend(ids.iter().map(|&i| rows[i].clone()));
        }
        Some(out)
    }

    /// Recompute this table's statistics from the stored data: row count,
    /// average widths, distincts, numeric min/max, null fractions.
    pub fn analyze(&mut self) {
        let rows = self.rows.read();
        let n = rows.len();
        self.def.stats.rows = n as f64;
        for (ci, col) in self.def.columns.iter_mut().enumerate() {
            if n == 0 {
                col.stats = ColumnStats::unknown(col.ty);
                continue;
            }
            let mut width_sum = 0.0;
            let mut nulls = 0usize;
            let mut distinct: HashSet<&Value> = HashSet::new();
            let mut min: Option<i64> = None;
            let mut max: Option<i64> = None;
            for row in rows.iter() {
                let v = &row[ci];
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                width_sum += v.width();
                distinct.insert(v);
                if let Value::Int(i) = v {
                    min = Some(min.map_or(*i, |m| m.min(*i)));
                    max = Some(max.map_or(*i, |m| m.max(*i)));
                }
            }
            let non_null = n - nulls;
            col.stats = ColumnStats {
                avg_width: if non_null > 0 {
                    width_sum / non_null as f64
                } else {
                    1.0
                },
                distinct: Some(distinct.len() as f64),
                min,
                max,
                null_fraction: nulls as f64 / n as f64,
            };
        }
    }
}

/// A database: a set of tables. Construct one from a [`Catalog`] and load
/// rows, or build tables ad hoc.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Instantiate every table in a catalog (empty tables).
    pub fn from_catalog(catalog: &Catalog) -> Database {
        let mut db = Database::new();
        for def in catalog.iter() {
            db.tables.insert(def.name.clone(), Table::new(def.clone()));
        }
        db
    }

    /// Create a table; errors if a table of that name exists.
    pub fn create_table(&mut self, def: TableDef) -> Result<(), RelationalError> {
        if self.tables.contains_key(&def.name) {
            return Err(RelationalError::DuplicateTable(def.name));
        }
        self.tables.insert(def.name.clone(), Table::new(def));
        Ok(())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, RelationalError> {
        self.tables
            .get(name)
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup (for `analyze`).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, RelationalError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Insert into a named table.
    pub fn insert(&self, table: &str, row: Row) -> Result<(), RelationalError> {
        self.table(table)?.insert(row)
    }

    /// All tables, name-ordered.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Recompute statistics on every table and return the resulting
    /// catalog (measured, not estimated).
    pub fn analyze(&mut self) -> Catalog {
        let mut catalog = Catalog::new();
        for table in self.tables.values_mut() {
            table.analyze();
            catalog.add(table.def.clone());
        }
        catalog
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnDef;
    use crate::types::SqlType;

    fn show_def() -> TableDef {
        let mut def = TableDef::new("Show");
        def.columns = vec![
            ColumnDef::new("Show_id", SqlType::Int),
            ColumnDef::new("title", SqlType::Text),
            ColumnDef::new("year", SqlType::Int).nullable(),
        ];
        def.key = Some("Show_id".into());
        def
    }

    fn loaded_table() -> Table {
        let t = Table::new(show_def());
        t.insert(vec![
            Value::Int(1),
            Value::str("The Fugitive"),
            Value::Int(1993),
        ])
        .unwrap();
        t.insert(vec![Value::Int(2), Value::str("X Files"), Value::Int(1993)])
            .unwrap();
        t.insert(vec![Value::Int(3), Value::str("Twin Peaks"), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn insert_and_scan() {
        let t = loaded_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.scan()[0][1], Value::str("The Fugitive"));
    }

    #[test]
    fn arity_is_enforced() {
        let t = Table::new(show_def());
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::ArityMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn types_are_enforced() {
        let t = Table::new(show_def());
        let err = t
            .insert(vec![Value::str("x"), Value::str("t"), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, RelationalError::TypeMismatch { .. }));
    }

    #[test]
    fn not_null_is_enforced() {
        let t = Table::new(show_def());
        let err = t
            .insert(vec![Value::Null, Value::str("t"), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, RelationalError::NullViolation { .. }));
        // but the nullable column accepts NULL
        t.insert(vec![Value::Int(1), Value::str("t"), Value::Null])
            .unwrap();
    }

    #[test]
    fn index_lookup_finds_matches() {
        let t = loaded_table();
        t.create_index("year").unwrap();
        let rows = t.index_lookup("year", &Value::Int(1993)).unwrap();
        assert_eq!(rows.len(), 2);
        let rows = t.index_lookup("year", &Value::Int(1800)).unwrap();
        assert!(rows.is_empty());
        assert!(t.index_lookup("title", &Value::str("x")).is_none());
    }

    #[test]
    fn index_stays_current_across_inserts() {
        let t = loaded_table();
        t.create_index("year").unwrap();
        t.insert(vec![Value::Int(4), Value::str("ER"), Value::Int(1993)])
            .unwrap();
        assert_eq!(t.index_lookup("year", &Value::Int(1993)).unwrap().len(), 3);
    }

    #[test]
    fn index_range_scans_inclusive_bounds() {
        let t = loaded_table();
        t.create_index("Show_id").unwrap();
        let rows = t
            .index_range("Show_id", Some(&Value::Int(2)), Some(&Value::Int(3)))
            .unwrap();
        assert_eq!(rows.len(), 2);
        let rows = t
            .index_range("Show_id", None, Some(&Value::Int(1)))
            .unwrap();
        assert_eq!(rows.len(), 1);
        let all = t.index_range("Show_id", None, None).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn create_index_on_missing_column_fails() {
        let t = Table::new(show_def());
        assert!(matches!(
            t.create_index("nope"),
            Err(RelationalError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn analyze_measures_statistics() {
        let mut t = loaded_table();
        t.analyze();
        assert_eq!(t.def.stats.rows, 3.0);
        let year = t.def.column("year").unwrap();
        assert_eq!(year.stats.min, Some(1993));
        assert_eq!(year.stats.max, Some(1993));
        assert_eq!(year.stats.distinct, Some(1.0));
        assert!((year.stats.null_fraction - 1.0 / 3.0).abs() < 1e-9);
        let title = t.def.column("title").unwrap();
        assert_eq!(title.stats.distinct, Some(3.0));
    }

    #[test]
    fn database_crud() {
        let mut db = Database::new();
        db.create_table(show_def()).unwrap();
        assert!(matches!(
            db.create_table(show_def()),
            Err(RelationalError::DuplicateTable(_))
        ));
        db.insert("Show", vec![Value::Int(1), Value::str("t"), Value::Null])
            .unwrap();
        assert_eq!(db.table("Show").unwrap().len(), 1);
        assert!(db.table("Nope").is_err());
        assert_eq!(db.total_rows(), 1);
    }

    #[test]
    fn from_catalog_instantiates_all_tables() {
        let mut catalog = Catalog::new();
        catalog.add(show_def());
        catalog.add(TableDef::new("Aka"));
        let db = Database::from_catalog(&catalog);
        assert_eq!(db.tables().count(), 2);
    }
}
