//! The in-memory storage engine: heap tables with optional ordered
//! (B-tree) secondary indexes.
//!
//! Tables are internally locked with `legodb_util::RwLock` (a
//! poison-tolerant wrapper over `std::sync::RwLock` with direct-guard
//! acquisition) so a shared `&Database` can be read from multiple threads —
//! the LegoDB greedy search evaluates candidate configurations in parallel.

use crate::catalog::{Catalog, ColumnStats, Layout, TableDef};
use crate::column::{ColumnData, ColumnStore};
use crate::error::RelationalError;
use crate::expr::Expr;
use crate::types::Value;
use crate::wal::{self, Wal, WalRecord};
use crate::ROW_OVERHEAD;
use legodb_util::fault::failpoint;
use legodb_util::fs::DirHandle;
use legodb_util::json::{self, Value as JValue};
use legodb_util::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Bound;

/// File name of the checkpoint document inside a database directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// A row: one value per column of the owning table.
pub type Row = Vec<Value>;

/// Physical storage statistics for one table, reported per layout by
/// [`Table::storage_stats`]: the row heap reports zero materialized
/// column vectors and byte-estimates rows at their measured width plus
/// [`ROW_OVERHEAD`]; the column store reports its vector count and the
/// exact bytes held in vectors + null bitmaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageStats {
    /// Which storage engine holds the data.
    pub layout: Layout,
    /// Rows stored.
    pub rows: usize,
    /// Column vectors materialized (0 for the row heap).
    pub columns_materialized: usize,
    /// Estimated resident bytes of the table body.
    pub est_bytes: f64,
}

/// Assemble [`ColumnStats`] from one analysis pass's accumulators.
fn finish_column_stats(
    n: usize,
    nulls: usize,
    width_sum: f64,
    distinct: usize,
    min: Option<i64>,
    max: Option<i64>,
) -> ColumnStats {
    let non_null = n - nulls;
    ColumnStats {
        avg_width: if non_null > 0 {
            width_sum / non_null as f64
        } else {
            1.0
        },
        distinct: Some(distinct as f64),
        min,
        max,
        null_fraction: nulls as f64 / n as f64,
    }
}

/// The physical body of a table: the row heap or the column store,
/// selected by the definition's [`Layout`]. Everything above this enum —
/// validation, indexing, the executor, WAL replay, checkpointing — is
/// layout-agnostic: both arms expose positional rows addressed by
/// insertion order, so row ids (and therefore secondary indexes) mean the
/// same thing in either.
#[derive(Debug)]
enum TableStore {
    Row(RwLock<Vec<Row>>),
    Column(RwLock<ColumnStore>),
}

/// A table: definition + rows + secondary indexes.
#[derive(Debug)]
pub struct Table {
    /// The table definition (columns, key, statistics).
    pub def: TableDef,
    store: TableStore,
    indexes: RwLock<HashMap<String, BTreeMap<Value, Vec<usize>>>>,
}

impl Table {
    /// An empty table for a definition; the definition's [`Layout`]
    /// selects the storage engine.
    pub fn new(def: TableDef) -> Table {
        // Lock discipline (checked statically by the `lock-order` lint and
        // dynamically by `legodb_util::lockcheck`): the store lock is
        // always taken *before* the indexes lock, never the reverse.
        let store = match def.layout {
            Layout::Row => TableStore::Row(RwLock::new_named(Vec::new(), "table.store")),
            Layout::Columnar => {
                TableStore::Column(RwLock::new_named(ColumnStore::new(&def), "table.store"))
            }
        };
        Table {
            def,
            store,
            indexes: RwLock::new_named(HashMap::new(), "table.indexes"),
        }
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        match &self.store {
            TableStore::Row(rows) => rows.read().len(),
            TableStore::Column(store) => store.read().len(),
        }
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Check a row against arity, type, and NOT NULL constraints without
    /// storing it. The durable path calls this *before* logging so a
    /// doomed row never reaches the WAL.
    pub fn validate_row(&self, row: &Row) -> Result<(), RelationalError> {
        if row.len() != self.def.columns.len() {
            return Err(RelationalError::ArityMismatch {
                table: self.def.name.clone(),
                expected: self.def.columns.len(),
                got: row.len(),
            });
        }
        for (value, col) in row.iter().zip(&self.def.columns) {
            if value.is_null() && !col.nullable {
                return Err(RelationalError::NullViolation {
                    table: self.def.name.clone(),
                    column: col.name.clone(),
                });
            }
            if !col.ty.admits(value) {
                return Err(RelationalError::TypeMismatch {
                    table: self.def.name.clone(),
                    column: col.name.clone(),
                    value: value.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Insert one row, enforcing arity, types, and NOT NULL constraints.
    pub fn insert(&self, row: Row) -> Result<(), RelationalError> {
        self.validate_row(&row)?;
        match &self.store {
            TableStore::Row(rows) => {
                let mut rows = rows.write();
                self.index_new_row(&row, rows.len())?;
                rows.push(row);
            }
            TableStore::Column(store) => {
                let mut store = store.write();
                self.index_new_row(&row, store.len())?;
                store.push(&row);
            }
        }
        Ok(())
    }

    /// Register a row about to be stored at `row_id` in every live index.
    fn index_new_row(&self, row: &Row, row_id: usize) -> Result<(), RelationalError> {
        let mut indexes = self.indexes.write();
        for (column, index) in indexes.iter_mut() {
            let ci =
                self.def
                    .column_index(column)
                    .ok_or_else(|| RelationalError::UnknownColumn {
                        table: self.def.name.clone(),
                        column: column.clone(),
                    })?;
            index.entry(row[ci].clone()).or_default().push(row_id);
        }
        Ok(())
    }

    /// Build an ordered secondary index on `column` (idempotent).
    pub fn create_index(&self, column: &str) -> Result<(), RelationalError> {
        let ci = self
            .def
            .column_index(column)
            .ok_or_else(|| RelationalError::UnknownColumn {
                table: self.def.name.clone(),
                column: column.to_string(),
            })?;
        if self.indexes.read().contains_key(column) {
            return Ok(());
        }
        // Store lock before indexes lock — the same order `insert` uses —
        // and the store guard stays held while the built index is
        // published, so no row inserted concurrently can be missed.
        match &self.store {
            TableStore::Row(rows) => {
                let rows = rows.read();
                let mut indexes = self.indexes.write();
                if indexes.contains_key(column) {
                    return Ok(());
                }
                let mut index: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
                for (row_id, row) in rows.iter().enumerate() {
                    index.entry(row[ci].clone()).or_default().push(row_id);
                }
                indexes.insert(column.to_string(), index);
            }
            TableStore::Column(store) => {
                // Only the indexed column is materialized — the other
                // vectors are never touched.
                let store = store.read();
                let mut indexes = self.indexes.write();
                if indexes.contains_key(column) {
                    return Ok(());
                }
                let mut index: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
                for row_id in 0..store.len() {
                    index
                        .entry(store.value(row_id, ci))
                        .or_default()
                        .push(row_id);
                }
                indexes.insert(column.to_string(), index);
            }
        }
        Ok(())
    }

    /// Is there an index on `column`?
    pub fn has_index(&self, column: &str) -> bool {
        self.indexes.read().contains_key(column)
    }

    /// Names of all indexed columns, sorted (checkpoint serialization).
    pub fn index_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self.indexes.read().keys().cloned().collect();
        cols.sort();
        cols
    }

    /// Snapshot all rows (cloned). The executor's sequential scan.
    pub fn scan(&self) -> Vec<Row> {
        match &self.store {
            TableStore::Row(rows) => rows.read().clone(),
            TableStore::Column(store) => store.read().rows(),
        }
    }

    /// Visit all rows without cloning the whole table. On a columnar
    /// table each row is reassembled into a scratch buffer first; use
    /// [`Table::columnar_scan`] when only some columns are needed.
    pub fn for_each(&self, mut f: impl FnMut(&Row)) {
        match &self.store {
            TableStore::Row(rows) => {
                for row in rows.read().iter() {
                    f(row);
                }
            }
            TableStore::Column(store) => {
                let store = store.read();
                for i in 0..store.len() {
                    f(&store.row(i));
                }
            }
        }
    }

    /// Sequential scan of a **columnar** table that materializes only the
    /// columns a query references (DESIGN.md §16). Phase one reassembles
    /// just the predicate's columns into a sparse full-arity row (NULLs
    /// elsewhere — safe because the predicate only reads its own columns)
    /// and evaluates it; phase two materializes the output columns for
    /// accepted rows only. With `projection = Some(cols)` the returned
    /// rows are already projected. Returns `None` on a row-store table:
    /// the executor falls back to [`Table::for_each`].
    pub fn columnar_scan(
        &self,
        predicate: Option<&Expr>,
        projection: Option<&[usize]>,
    ) -> Option<Result<Vec<Row>, RelationalError>> {
        let TableStore::Column(store) = &self.store else {
            return None;
        };
        let store = store.read();
        let pred_cols = predicate
            .map(|p| p.referenced_columns())
            .unwrap_or_default();
        let mut sparse = vec![Value::Null; self.def.columns.len()];
        let mut out = Vec::new();
        for i in 0..store.len() {
            let keep = match predicate {
                Some(p) => {
                    for &c in &pred_cols {
                        sparse[c] = store.value(i, c);
                    }
                    match p.accepts(&sparse) {
                        Ok(b) => b,
                        Err(e) => return Some(Err(e)),
                    }
                }
                None => true,
            };
            if !keep {
                continue;
            }
            out.push(match projection {
                Some(cols) => cols.iter().map(|&c| store.value(i, c)).collect(),
                None => store.row(i),
            });
        }
        Some(Ok(out))
    }

    /// Rows whose `column` equals `key`, via the index. Returns `None` if no
    /// index exists on that column.
    pub fn index_lookup(&self, column: &str, key: &Value) -> Option<Vec<Row>> {
        // Copy the matching ids out before touching the store: `rows_at`
        // takes the store lock, which must never nest under the indexes
        // lock (it would invert the store-before-indexes order).
        let ids = {
            let indexes = self.indexes.read();
            let index = indexes.get(column)?;
            index.get(key).cloned().unwrap_or_default()
        };
        Some(self.rows_at(&ids))
    }

    /// Rows whose `column` lies in `[lo, hi]` (inclusive bounds; `None` is
    /// unbounded), via the index.
    pub fn index_range(
        &self,
        column: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<Vec<Row>> {
        let lower = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let upper = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
        let ids = {
            let indexes = self.indexes.read();
            let index = indexes.get(column)?;
            let mut ids = Vec::new();
            for (_, matched) in index.range((lower, upper)) {
                ids.extend_from_slice(matched);
            }
            ids
        };
        Some(self.rows_at(&ids))
    }

    /// Clone out the rows at `ids` (index probes reconstruct matches by
    /// row id on either layout).
    fn rows_at(&self, ids: &[usize]) -> Vec<Row> {
        match &self.store {
            TableStore::Row(rows) => {
                let rows = rows.read();
                ids.iter().map(|&i| rows[i].clone()).collect()
            }
            TableStore::Column(store) => {
                let store = store.read();
                ids.iter().map(|&i| store.row(i)).collect()
            }
        }
    }

    /// Recompute this table's statistics from the stored data: row count,
    /// average widths, distincts, numeric min/max, null fractions. The
    /// layout rides along in the definition, so a re-`analyze`d catalog
    /// still tells the cost model which page math applies; on a columnar
    /// table each column's pass reads only that column's vector.
    pub fn analyze(&mut self) {
        let n = self.len();
        self.def.stats.rows = n as f64;
        match &self.store {
            TableStore::Row(rows) => {
                let rows = rows.read();
                for (ci, col) in self.def.columns.iter_mut().enumerate() {
                    if n == 0 {
                        col.stats = ColumnStats::unknown(col.ty);
                        continue;
                    }
                    let mut width_sum = 0.0;
                    let mut nulls = 0usize;
                    let mut distinct: HashSet<&Value> = HashSet::new();
                    let mut min: Option<i64> = None;
                    let mut max: Option<i64> = None;
                    for row in rows.iter() {
                        let v = &row[ci];
                        if v.is_null() {
                            nulls += 1;
                            continue;
                        }
                        width_sum += v.width();
                        distinct.insert(v);
                        if let Value::Int(i) = v {
                            min = Some(min.map_or(*i, |m| m.min(*i)));
                            max = Some(max.map_or(*i, |m| m.max(*i)));
                        }
                    }
                    col.stats = finish_column_stats(n, nulls, width_sum, distinct.len(), min, max);
                }
            }
            TableStore::Column(store) => {
                let store = store.read();
                for (ci, col) in self.def.columns.iter_mut().enumerate() {
                    let Some(vector) = store.column(ci).filter(|_| n > 0) else {
                        col.stats = ColumnStats::unknown(col.ty);
                        continue;
                    };
                    let mut width_sum = 0.0;
                    let mut nulls = 0usize;
                    let mut min: Option<i64> = None;
                    let mut max: Option<i64> = None;
                    let distinct_count = match vector.data() {
                        ColumnData::Int(values) => {
                            let mut distinct: HashSet<i64> = HashSet::new();
                            for (i, &x) in values.iter().enumerate() {
                                if vector.is_null(i) {
                                    nulls += 1;
                                    continue;
                                }
                                width_sum += 8.0;
                                distinct.insert(x);
                                min = Some(min.map_or(x, |m| m.min(x)));
                                max = Some(max.map_or(x, |m| m.max(x)));
                            }
                            distinct.len()
                        }
                        ColumnData::Str(values) => {
                            let mut distinct: HashSet<&str> = HashSet::new();
                            for (i, s) in values.iter().enumerate() {
                                if vector.is_null(i) {
                                    nulls += 1;
                                    continue;
                                }
                                width_sum += s.len() as f64;
                                distinct.insert(s.as_str());
                            }
                            distinct.len()
                        }
                    };
                    col.stats = finish_column_stats(n, nulls, width_sum, distinct_count, min, max);
                }
            }
        }
    }

    /// Per-layout physical storage statistics (see
    /// [`Database::snapshot_json`]'s `storage` block).
    pub fn storage_stats(&self) -> StorageStats {
        match &self.store {
            TableStore::Row(rows) => {
                let rows = rows.read();
                let bytes: f64 = rows
                    .iter()
                    .map(|r| ROW_OVERHEAD + r.iter().map(Value::width).sum::<f64>())
                    .sum();
                StorageStats {
                    layout: Layout::Row,
                    rows: rows.len(),
                    columns_materialized: 0,
                    est_bytes: bytes,
                }
            }
            TableStore::Column(store) => {
                let store = store.read();
                StorageStats {
                    layout: Layout::Columnar,
                    rows: store.len(),
                    columns_materialized: store.column_count(),
                    est_bytes: store.materialized_bytes(),
                }
            }
        }
    }
}

/// A database: a set of tables. Construct one from a [`Catalog`] and load
/// rows, or build tables ad hoc — both in-memory only. For durability,
/// [`Database::open`] attaches a write-ahead log: every `create_table` /
/// `create_index` / `insert` is logged before it is applied, and
/// [`Database::checkpoint`] + [`Database::open`] provide restart recovery
/// (see DESIGN.md §14).
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    wal: Option<Wal>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Instantiate every table in a catalog (empty tables).
    pub fn from_catalog(catalog: &Catalog) -> Database {
        let mut db = Database::new();
        for def in catalog.iter() {
            db.tables.insert(def.name.clone(), Table::new(def.clone()));
        }
        db
    }

    /// Create a table; errors if a table of that name exists. On a
    /// durable database the definition is WAL-logged before it takes
    /// effect (log-before-apply).
    pub fn create_table(&mut self, def: TableDef) -> Result<(), RelationalError> {
        if self.tables.contains_key(&def.name) {
            return Err(RelationalError::DuplicateTable(def.name));
        }
        if let Some(wal) = &self.wal {
            wal.append(&WalRecord::CreateTable(def.clone()))?;
        }
        self.tables.insert(def.name.clone(), Table::new(def));
        Ok(())
    }

    /// Create a secondary index on `table.column`, WAL-logged on a
    /// durable database. (Calling `Table::create_index` directly still
    /// works but bypasses the log; durable code should use this.)
    pub fn create_index(&self, table: &str, column: &str) -> Result<(), RelationalError> {
        let t = self.table(table)?;
        if t.def.column_index(column).is_none() {
            return Err(RelationalError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            });
        }
        if let Some(wal) = &self.wal {
            wal.append(&WalRecord::CreateIndex {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        }
        t.create_index(column)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table, RelationalError> {
        self.tables
            .get(name)
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup (for `analyze`).
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, RelationalError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| RelationalError::UnknownTable(name.to_string()))
    }

    /// Insert into a named table. On a durable database the row is
    /// validated, WAL-logged, then applied — so the log never carries a
    /// row the engine would reject, and a logged row is always
    /// reconstructible by replay.
    pub fn insert(&self, table: &str, row: Row) -> Result<(), RelationalError> {
        let t = self.table(table)?;
        if let Some(wal) = &self.wal {
            t.validate_row(&row)?;
            wal.append_insert(table, &row)?;
        }
        t.insert(row)
    }

    /// Insert a batch of rows into one table with group-commit
    /// durability: every row is validated, the whole batch is logged as a
    /// *single* WAL frame, and one fsync makes it durable — so the
    /// durability cost is one fsync per batch, not per row. The single
    /// frame also means crash recovery keeps or drops the batch wholly
    /// (see [`WalRecord::InsertBatch`]); a crash mid-ingest recovers a
    /// prefix of complete batches, never a torn one.
    ///
    /// On an in-memory database this is plain bulk insert. An empty batch
    /// is a no-op (no frame, no fsync).
    pub fn insert_batch(&self, table: &str, rows: Vec<Row>) -> Result<(), RelationalError> {
        if rows.is_empty() {
            return Ok(());
        }
        let t = self.table(table)?;
        if let Some(wal) = &self.wal {
            for row in &rows {
                t.validate_row(row)?;
            }
            wal.append_insert_batch(table, &rows)?;
            wal.commit()?;
        }
        for row in rows {
            t.insert(row)?;
        }
        Ok(())
    }

    /// All tables, name-ordered.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Recompute statistics on every table and return the resulting
    /// catalog (measured, not estimated).
    pub fn analyze(&mut self) -> Catalog {
        let mut catalog = Catalog::new();
        for table in self.tables.values_mut() {
            table.analyze();
            catalog.add(table.def.clone());
        }
        catalog
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    // -- durability ---------------------------------------------------------

    /// Open (or create) a durable database in `dir`: restore the latest
    /// checkpoint, then replay the WAL tail. Replay is idempotent —
    /// records at or below the checkpoint's LSN are skipped, so a crash
    /// between checkpoint install and WAL truncation (or a double `open`)
    /// never applies an operation twice. The WAL's torn tail, if any, is
    /// truncated as a side effect (see `wal.rs`).
    pub fn open(dir: &DirHandle) -> Result<Database, RelationalError> {
        let mut db = Database::new();
        let mut last_lsn = 0u64;
        if let Some(bytes) = dir
            .read_opt(CHECKPOINT_FILE)
            .map_err(|e| wal::io_err("checkpoint read", &e))?
        {
            last_lsn = db.restore_checkpoint(&bytes)?;
        }
        let (wal_handle, records) = Wal::open(dir)?;
        let mut max_lsn = last_lsn;
        for (lsn, record) in records {
            if lsn <= last_lsn {
                continue; // already captured by the checkpoint
            }
            db.apply(record)?;
            max_lsn = lsn;
        }
        wal_handle.set_next_lsn(max_lsn + 1);
        db.wal = Some(wal_handle);
        Ok(db)
    }

    /// Apply one replayed WAL record. Only called before the WAL handle
    /// is attached, so nothing here re-logs.
    fn apply(&mut self, record: WalRecord) -> Result<(), RelationalError> {
        match record {
            WalRecord::CreateTable(def) => self.create_table(def),
            WalRecord::CreateIndex { table, column } => self.table(&table)?.create_index(&column),
            WalRecord::Insert { table, row } => self.table(&table)?.insert(row),
            WalRecord::InsertBatch { table, rows } => {
                let t = self.table(&table)?;
                for row in rows {
                    t.insert(row)?;
                }
                Ok(())
            }
        }
    }

    /// Parse and load a checkpoint document; returns its `last_lsn`.
    fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<u64, RelationalError> {
        let text =
            std::str::from_utf8(bytes).map_err(|_| wal::corrupt("checkpoint is not UTF-8"))?;
        let doc = json::parse(text).map_err(|e| wal::corrupt(&format!("checkpoint JSON: {e}")))?;
        let last_lsn = wal::parse_u64_field(&doc, "last_lsn")?;
        let tables = match doc.get("tables") {
            Some(JValue::Array(items)) => items,
            _ => return Err(wal::corrupt("checkpoint missing tables array")),
        };
        for t in tables {
            let def_json = t
                .get("def")
                .ok_or_else(|| wal::corrupt("checkpoint table missing def"))?;
            let def = wal::table_def_from_json(def_json)?;
            let name = def.name.clone();
            self.create_table(def)?;
            let table = self.table(&name)?;
            let rows = match t.get("rows") {
                Some(JValue::Array(items)) => items,
                _ => return Err(wal::corrupt("checkpoint table missing rows array")),
            };
            for row in rows {
                table.insert(wal::row_from_json(row)?)?;
            }
            let indexes = match t.get("indexes") {
                Some(JValue::Array(items)) => items,
                _ => return Err(wal::corrupt("checkpoint table missing indexes array")),
            };
            for col in indexes {
                let col = col
                    .as_str()
                    .ok_or_else(|| wal::corrupt("index column must be a string"))?;
                table.create_index(col)?;
            }
        }
        Ok(last_lsn)
    }

    /// Durably flush all WAL records appended so far (a commit
    /// boundary). A no-op on an in-memory database.
    pub fn commit(&self) -> Result<(), RelationalError> {
        match &self.wal {
            Some(wal) => wal.commit(),
            None => Ok(()),
        }
    }

    /// Write a checkpoint of the full database state into `dir`
    /// (atomically: temp file + fsync + rename + dir fsync), then reclaim
    /// the WAL. Rows are streamed via [`Table::for_each`] — checkpointing
    /// never clones a table's row vector, so peak memory stays one copy
    /// of the data plus the serialized text.
    ///
    /// Crash windows, all covered by seeded failpoints:
    /// - before install (`checkpoint.serialize` / `checkpoint.install`):
    ///   the old checkpoint + full WAL still recover everything;
    /// - after install, before WAL truncation (`wal.truncate` fires
    ///   inside [`Wal::truncate`]): replay skips LSNs the new checkpoint
    ///   already covers.
    pub fn checkpoint(&self, dir: &DirHandle) -> Result<(), RelationalError> {
        let last_lsn = self.wal.as_ref().map_or(0, |w| w.next_lsn() - 1);
        let key = last_lsn.to_string();
        failpoint("checkpoint.serialize", &key)
            .map_err(|f| wal::io_fault("checkpoint serialize", &f))?;
        let doc = self.render_document(Some(last_lsn));
        failpoint("checkpoint.install", &key)
            .map_err(|f| wal::io_fault("checkpoint install", &f))?;
        dir.write_atomic(CHECKPOINT_FILE, doc.as_bytes())
            .map_err(|e| wal::io_err("checkpoint install", &e))?;
        match &self.wal {
            Some(wal) => wal.truncate(),
            None => Ok(()),
        }
    }

    /// True when this database writes through a WAL.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The attached WAL, if any (telemetry: size, poison state).
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// A deterministic JSON snapshot of the full logical state (defs,
    /// index columns, rows) **without** any durability bookkeeping — two
    /// databases with identical contents render identical snapshots, so
    /// tests and the recovery bench compare states byte-for-byte.
    pub fn snapshot_json(&self) -> String {
        self.render_document(None)
    }

    fn render_document(&self, last_lsn: Option<u64>) -> String {
        let mut out = String::from("{\"format\":1,");
        if let Some(lsn) = last_lsn {
            out.push_str("\"last_lsn\":\"");
            out.push_str(&lsn.to_string());
            out.push_str("\",");
        }
        out.push_str("\"tables\":[");
        let mut first_table = true;
        for table in self.tables.values() {
            if !first_table {
                out.push(',');
            }
            first_table = false;
            out.push_str("{\"def\":");
            out.push_str(&wal::table_def_json(&table.def).render());
            // Physical storage block: which engine holds the rows and
            // what it costs in memory. Recovery/restore ignores it (the
            // def carries the layout); byte-compared snapshots include it
            // so a layout regression is a visible diff.
            let stats = table.storage_stats();
            out.push_str(&format!(
                ",\"storage\":{{\"columns_materialized\":{},\"est_bytes\":{},\"layout\":\"{}\",\"rows\":{}}}",
                stats.columns_materialized,
                json::Value::Number(stats.est_bytes).render(),
                stats.layout,
                stats.rows
            ));
            out.push_str(",\"indexes\":[");
            let cols = table.index_columns();
            for (i, col) in cols.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&json::escape(col));
                out.push('"');
            }
            out.push_str("],\"rows\":[");
            let mut first_row = true;
            table.for_each(|row| {
                if !first_row {
                    out.push(',');
                }
                first_row = false;
                out.push_str(&wal::row_json(row).render());
            });
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ColumnDef;
    use crate::types::SqlType;

    fn show_def() -> TableDef {
        let mut def = TableDef::new("Show");
        def.columns = vec![
            ColumnDef::new("Show_id", SqlType::Int),
            ColumnDef::new("title", SqlType::Text),
            ColumnDef::new("year", SqlType::Int).nullable(),
        ];
        def.key = Some("Show_id".into());
        def
    }

    fn loaded_table() -> Table {
        let t = Table::new(show_def());
        t.insert(vec![
            Value::Int(1),
            Value::str("The Fugitive"),
            Value::Int(1993),
        ])
        .unwrap();
        t.insert(vec![Value::Int(2), Value::str("X Files"), Value::Int(1993)])
            .unwrap();
        t.insert(vec![Value::Int(3), Value::str("Twin Peaks"), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn insert_and_scan() {
        let t = loaded_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.scan()[0][1], Value::str("The Fugitive"));
    }

    #[test]
    fn arity_is_enforced() {
        let t = Table::new(show_def());
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            RelationalError::ArityMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn types_are_enforced() {
        let t = Table::new(show_def());
        let err = t
            .insert(vec![Value::str("x"), Value::str("t"), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, RelationalError::TypeMismatch { .. }));
    }

    #[test]
    fn not_null_is_enforced() {
        let t = Table::new(show_def());
        let err = t
            .insert(vec![Value::Null, Value::str("t"), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(err, RelationalError::NullViolation { .. }));
        // but the nullable column accepts NULL
        t.insert(vec![Value::Int(1), Value::str("t"), Value::Null])
            .unwrap();
    }

    #[test]
    fn index_lookup_finds_matches() {
        let t = loaded_table();
        t.create_index("year").unwrap();
        let rows = t.index_lookup("year", &Value::Int(1993)).unwrap();
        assert_eq!(rows.len(), 2);
        let rows = t.index_lookup("year", &Value::Int(1800)).unwrap();
        assert!(rows.is_empty());
        assert!(t.index_lookup("title", &Value::str("x")).is_none());
    }

    #[test]
    fn index_stays_current_across_inserts() {
        let t = loaded_table();
        t.create_index("year").unwrap();
        t.insert(vec![Value::Int(4), Value::str("ER"), Value::Int(1993)])
            .unwrap();
        assert_eq!(t.index_lookup("year", &Value::Int(1993)).unwrap().len(), 3);
    }

    #[test]
    fn index_range_scans_inclusive_bounds() {
        let t = loaded_table();
        t.create_index("Show_id").unwrap();
        let rows = t
            .index_range("Show_id", Some(&Value::Int(2)), Some(&Value::Int(3)))
            .unwrap();
        assert_eq!(rows.len(), 2);
        let rows = t
            .index_range("Show_id", None, Some(&Value::Int(1)))
            .unwrap();
        assert_eq!(rows.len(), 1);
        let all = t.index_range("Show_id", None, None).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn create_index_on_missing_column_fails() {
        let t = Table::new(show_def());
        assert!(matches!(
            t.create_index("nope"),
            Err(RelationalError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn analyze_measures_statistics() {
        let mut t = loaded_table();
        t.analyze();
        assert_eq!(t.def.stats.rows, 3.0);
        let year = t.def.column("year").unwrap();
        assert_eq!(year.stats.min, Some(1993));
        assert_eq!(year.stats.max, Some(1993));
        assert_eq!(year.stats.distinct, Some(1.0));
        assert!((year.stats.null_fraction - 1.0 / 3.0).abs() < 1e-9);
        let title = t.def.column("title").unwrap();
        assert_eq!(title.stats.distinct, Some(3.0));
    }

    #[test]
    fn database_crud() {
        let mut db = Database::new();
        db.create_table(show_def()).unwrap();
        assert!(matches!(
            db.create_table(show_def()),
            Err(RelationalError::DuplicateTable(_))
        ));
        db.insert("Show", vec![Value::Int(1), Value::str("t"), Value::Null])
            .unwrap();
        assert_eq!(db.table("Show").unwrap().len(), 1);
        assert!(db.table("Nope").is_err());
        assert_eq!(db.total_rows(), 1);
    }

    #[test]
    fn from_catalog_instantiates_all_tables() {
        let mut catalog = Catalog::new();
        catalog.add(show_def());
        catalog.add(TableDef::new("Aka"));
        let db = Database::from_catalog(&catalog);
        assert_eq!(db.tables().count(), 2);
    }

    fn loaded_columnar_table() -> Table {
        let t = Table::new(show_def().with_layout(Layout::Columnar));
        t.insert(vec![
            Value::Int(1),
            Value::str("The Fugitive"),
            Value::Int(1993),
        ])
        .unwrap();
        t.insert(vec![Value::Int(2), Value::str("X Files"), Value::Int(1993)])
            .unwrap();
        t.insert(vec![Value::Int(3), Value::str("Twin Peaks"), Value::Null])
            .unwrap();
        t
    }

    #[test]
    fn columnar_table_behaves_like_the_row_heap() {
        let row = loaded_table();
        let col = loaded_columnar_table();
        assert_eq!(col.len(), 3);
        assert_eq!(col.scan(), row.scan());
        let mut via_for_each = Vec::new();
        col.for_each(|r| via_for_each.push(r.clone()));
        assert_eq!(via_for_each, row.scan());
        // Index built after load, kept current across inserts, identical
        // answers on both layouts.
        col.create_index("year").unwrap();
        row.create_index("year").unwrap();
        assert_eq!(
            col.index_lookup("year", &Value::Int(1993)),
            row.index_lookup("year", &Value::Int(1993))
        );
        col.insert(vec![Value::Int(4), Value::str("ER"), Value::Int(1993)])
            .unwrap();
        assert_eq!(
            col.index_lookup("year", &Value::Int(1993)).unwrap().len(),
            3
        );
        assert_eq!(
            col.index_range("Show_id", Some(&Value::Int(2)), None),
            None,
            "no index on Show_id yet"
        );
        col.create_index("Show_id").unwrap();
        assert_eq!(
            col.index_range("Show_id", Some(&Value::Int(2)), Some(&Value::Int(3)))
                .unwrap()
                .len(),
            2
        );
        // Constraints are enforced by the same validation layer.
        assert!(matches!(
            col.insert(vec![Value::Null, Value::str("t"), Value::Null]),
            Err(RelationalError::NullViolation { .. })
        ));
    }

    #[test]
    fn columnar_analyze_matches_row_analyze() {
        let mut row = loaded_table();
        let mut col = loaded_columnar_table();
        row.analyze();
        col.analyze();
        // Identical statistics from both layouts; only the layout differs.
        let mut rdef = row.def.clone();
        rdef.layout = Layout::Columnar;
        assert_eq!(rdef, col.def);
        assert_eq!(col.def.layout, Layout::Columnar);
    }

    #[test]
    fn columnar_scan_pushdown_matches_full_scan() {
        let col = loaded_columnar_table();
        let pred = crate::expr::Expr::cmp(crate::expr::CmpOp::Eq, 2, 1993i64);
        let rows = col
            .columnar_scan(Some(&pred), Some(&[1]))
            .expect("columnar table")
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::str("The Fugitive")],
                vec![Value::str("X Files")]
            ]
        );
        // The row heap has no columnar path.
        assert!(loaded_table().columnar_scan(None, None).is_none());
    }

    #[test]
    fn storage_stats_report_per_layout() {
        let row = loaded_table();
        let col = loaded_columnar_table();
        let rs = row.storage_stats();
        assert_eq!(rs.layout, Layout::Row);
        assert_eq!(rs.rows, 3);
        assert_eq!(rs.columns_materialized, 0);
        assert!(rs.est_bytes > 0.0);
        let cs = col.storage_stats();
        assert_eq!(cs.layout, Layout::Columnar);
        assert_eq!(cs.rows, 3);
        assert_eq!(cs.columns_materialized, 3);
        assert!(cs.est_bytes > 0.0);
        // Columns pack tighter than rows: no per-row overhead.
        assert!(cs.est_bytes < rs.est_bytes);
        // The snapshot document carries the storage block.
        let mut db = Database::new();
        db.create_table(show_def().with_layout(Layout::Columnar))
            .unwrap();
        let snap = db.snapshot_json();
        assert!(snap.contains("\"storage\":{\"columns_materialized\":3"));
        assert!(snap.contains("\"layout\":\"columnar\""));
    }

    // -- durability ---------------------------------------------------------

    use legodb_util::fault::{override_for_test, FaultConfig, FaultMode, OverrideGuard};
    use std::path::PathBuf;

    /// Disable env-activated fault injection (the CI fault stage) so these
    /// deterministic tests see only the faults they inject themselves.
    fn quiet_faults() -> OverrideGuard {
        override_for_test(FaultConfig {
            seed: 0,
            rate: 0.0,
            mode: FaultMode::Error,
        })
    }

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("legodb-storage-{tag}-{}", std::process::id()))
    }

    fn load_durable(db: &mut Database, rows: i64) {
        db.create_table(show_def()).unwrap();
        db.create_index("Show", "year").unwrap();
        for i in 0..rows {
            db.insert(
                "Show",
                vec![
                    Value::Int(i),
                    Value::str(format!("show {i}")),
                    Value::Int(1990 + i),
                ],
            )
            .unwrap();
        }
        db.commit().unwrap();
    }

    #[test]
    fn insert_batch_is_durable_with_one_fsync_per_batch() {
        let _quiet = quiet_faults();
        let root = scratch("batch");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        let snapshot;
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(show_def()).unwrap();
            db.commit().unwrap();
            let before = db.wal().unwrap().sync_count();
            for batch in 0..3 {
                let rows: Vec<Row> = (0..10)
                    .map(|i| {
                        vec![
                            Value::Int(batch * 10 + i),
                            Value::str(format!("b{batch}r{i}")),
                            Value::Null,
                        ]
                    })
                    .collect();
                db.insert_batch("Show", rows).unwrap();
            }
            // Group commit: exactly one fsync per batch, already durable —
            // no further commit() needed.
            assert_eq!(db.wal().unwrap().sync_count() - before, 3);
            db.insert_batch("Show", Vec::new()).unwrap(); // no-op
            assert_eq!(db.wal().unwrap().sync_count() - before, 3);
            snapshot = db.snapshot_json();
        }
        let recovered = Database::open(&dir).unwrap();
        assert_eq!(recovered.snapshot_json(), snapshot);
        assert_eq!(recovered.table("Show").unwrap().len(), 30);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn insert_batch_validates_every_row_before_logging() {
        let _quiet = quiet_faults();
        let root = scratch("batch-validate");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(show_def()).unwrap();
            db.commit().unwrap();
            let wal_len = db.wal().unwrap().len_bytes().unwrap();
            let err = db
                .insert_batch(
                    "Show",
                    vec![
                        vec![Value::Int(1), Value::str("ok"), Value::Null],
                        vec![Value::Null, Value::str("bad key"), Value::Null],
                    ],
                )
                .unwrap_err();
            assert!(matches!(err, RelationalError::NullViolation { .. }));
            // Nothing reached the log or the table.
            assert_eq!(db.wal().unwrap().len_bytes().unwrap(), wal_len);
            assert_eq!(db.table("Show").unwrap().len(), 0);
        }
        let recovered = Database::open(&dir).unwrap();
        assert_eq!(recovered.table("Show").unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn durable_roundtrip_restores_checkpoint_plus_wal_tail() {
        let _quiet = quiet_faults();
        let root = scratch("roundtrip");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        let snapshot;
        {
            let mut db = Database::open(&dir).unwrap();
            assert!(db.is_durable());
            load_durable(&mut db, 3);
            db.checkpoint(&dir).unwrap();
            // rows past the checkpoint live only in the WAL tail
            db.insert(
                "Show",
                vec![Value::Int(90), Value::str("late"), Value::Null],
            )
            .unwrap();
            db.commit().unwrap();
            snapshot = db.snapshot_json();
        }
        let recovered = Database::open(&dir).unwrap();
        assert_eq!(recovered.snapshot_json(), snapshot);
        assert_eq!(recovered.table("Show").unwrap().len(), 4);
        // restored indexes answer lookups
        assert_eq!(
            recovered
                .table("Show")
                .unwrap()
                .index_lookup("year", &Value::Int(1991))
                .unwrap()
                .len(),
            1
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn double_open_is_a_no_op() {
        let _quiet = quiet_faults();
        let root = scratch("idempotent");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        {
            let mut db = Database::open(&dir).unwrap();
            load_durable(&mut db, 5);
            db.checkpoint(&dir).unwrap();
            db.insert(
                "Show",
                vec![Value::Int(91), Value::str("tail"), Value::Null],
            )
            .unwrap();
            db.commit().unwrap();
        }
        let first = Database::open(&dir).unwrap().snapshot_json();
        let second = Database::open(&dir).unwrap().snapshot_json();
        assert_eq!(first, second, "replay must be idempotent");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_between_checkpoint_install_and_wal_truncate_is_safe() {
        let root = scratch("window");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        let snapshot;
        let last_lsn;
        {
            let quiet = quiet_faults();
            let mut db = Database::open(&dir).unwrap();
            load_durable(&mut db, 4);
            snapshot = db.snapshot_json();
            last_lsn = db.wal().unwrap().next_lsn() - 1;
            // The override-owner mutex is not reentrant: release the
            // quiet guard before installing per-seed overrides.
            drop(quiet);

            // Decisions are pure in (seed, site, key): probe for a seed
            // where both checkpoint sites pass but wal.truncate fires, so
            // the simulated crash lands exactly in the install→truncate
            // window.
            let ck = last_lsn.to_string();
            let tk = (last_lsn + 1).to_string();
            let seed = (0..10_000u64)
                .find(|&seed| {
                    let _g = override_for_test(FaultConfig {
                        seed,
                        rate: 0.2,
                        mode: FaultMode::Error,
                    });
                    legodb_util::failpoint("checkpoint.serialize", &ck).is_ok()
                        && legodb_util::failpoint("checkpoint.install", &ck).is_ok()
                        && legodb_util::failpoint("wal.truncate", &tk).is_err()
                })
                .expect("some seed isolates the truncate window");
            let _g = override_for_test(FaultConfig {
                seed,
                rate: 0.2,
                mode: FaultMode::Error,
            });
            let err = db.checkpoint(&dir).unwrap_err();
            assert!(matches!(err, RelationalError::Io { .. }), "{err}");
        }
        // Checkpoint installed, WAL never reclaimed: every WAL record is
        // also in the checkpoint. LSN-skip replay must not double-apply.
        let _quiet = quiet_faults();
        assert!(dir.file_len(crate::wal::WAL_FILE).unwrap() > 0);
        let recovered = Database::open(&dir).unwrap();
        assert_eq!(recovered.snapshot_json(), snapshot);
        assert_eq!(recovered.wal().unwrap().next_lsn(), last_lsn + 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn failed_checkpoint_before_install_loses_nothing() {
        let root = scratch("preinstall");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        let snapshot;
        {
            let quiet = quiet_faults();
            let mut db = Database::open(&dir).unwrap();
            load_durable(&mut db, 3);
            snapshot = db.snapshot_json();
            drop(quiet); // owner mutex is not reentrant
                         // rate-1 faults: checkpoint dies at its first site, before
                         // anything is written
            let _g = override_for_test(FaultConfig::always(11, FaultMode::Error));
            assert!(db.checkpoint(&dir).is_err());
        }
        let _quiet = quiet_faults();
        assert!(!dir.exists(CHECKPOINT_FILE).unwrap());
        let recovered = Database::open(&dir).unwrap();
        assert_eq!(recovered.snapshot_json(), snapshot);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn non_durable_database_commit_and_checkpoint_still_work() {
        let _quiet = quiet_faults();
        let mut db = Database::new();
        db.create_table(show_def()).unwrap();
        db.insert("Show", vec![Value::Int(1), Value::str("t"), Value::Null])
            .unwrap();
        assert!(!db.is_durable());
        db.commit().unwrap(); // no-op
                              // checkpoint works as a plain export for in-memory databases
        let root = scratch("export");
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirHandle::create(&root).unwrap();
        db.checkpoint(&dir).unwrap();
        let restored = Database::open(&dir).unwrap();
        assert_eq!(restored.snapshot_json(), db.snapshot_json());
        let _ = std::fs::remove_dir_all(&root);
    }
}
