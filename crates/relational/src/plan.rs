//! Physical query plans: the operator tree the executor runs and the
//! optimizer emits.

use crate::expr::Expr;
use crate::types::Value;
use std::fmt;

/// How an index scan selects rows.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexKey {
    /// Rows whose indexed column equals the value.
    Eq(Value),
    /// Rows whose indexed column lies in the inclusive range
    /// (`None` bounds are unbounded).
    Range {
        /// Lower bound, inclusive.
        lo: Option<Value>,
        /// Upper bound, inclusive.
        hi: Option<Value>,
    },
}

/// A physical operator tree. Joins output `left_row ++ right_row`;
/// projections select columns by position.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Full scan of a table with optional filter and projection pushed in.
    SeqScan {
        /// Table name.
        table: String,
        /// Filter applied to each row (over the table's full column list).
        predicate: Option<Expr>,
        /// Output columns (positions); `None` means all.
        projection: Option<Vec<usize>>,
    },
    /// Index-assisted selection on one column.
    IndexScan {
        /// Table name.
        table: String,
        /// Indexed column name.
        column: String,
        /// Equality or range key.
        key: IndexKey,
        /// Residual filter on matching rows.
        residual: Option<Expr>,
        /// Output columns (positions); `None` means all.
        projection: Option<Vec<usize>>,
    },
    /// Filter on an input.
    Filter {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Predicate over the input's output row.
        predicate: Expr,
    },
    /// Column projection.
    Project {
        /// Input operator.
        input: Box<PhysicalPlan>,
        /// Positions of the input's output row to keep, in order.
        columns: Vec<usize>,
    },
    /// Tuple-at-a-time nested-loop join with an arbitrary predicate
    /// (over `left_row ++ right_row`). `None` predicate is a cross product.
    NestedLoopJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Inner input.
        right: Box<PhysicalPlan>,
        /// Join predicate over the concatenated row.
        predicate: Option<Expr>,
    },
    /// Hash equi-join: build on the right input, probe with the left.
    HashJoin {
        /// Probe side.
        left: Box<PhysicalPlan>,
        /// Build side.
        right: Box<PhysicalPlan>,
        /// Key positions in the left output row.
        left_keys: Vec<usize>,
        /// Key positions in the right output row.
        right_keys: Vec<usize>,
    },
    /// Index nested-loop join: for each left row, probe `table`'s index on
    /// `column` with the value at `left_key`.
    IndexJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Inner table (must have an index on `column`).
        table: String,
        /// Indexed column name.
        column: String,
        /// Position in the left output row providing the probe key.
        left_key: usize,
        /// Residual predicate over the concatenated row.
        residual: Option<Expr>,
    },
    /// Bag union (concatenation) of same-arity inputs.
    Union {
        /// Inputs.
        inputs: Vec<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// Convenience: an unfiltered full-table scan.
    pub fn scan(table: impl Into<String>) -> PhysicalPlan {
        PhysicalPlan::SeqScan {
            table: table.into(),
            predicate: None,
            projection: None,
        }
    }

    /// All table names this plan touches (with repetition).
    pub fn tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            PhysicalPlan::SeqScan { table, .. } | PhysicalPlan::IndexScan { table, .. } => {
                out.push(table)
            }
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
                input.collect_tables(out)
            }
            PhysicalPlan::NestedLoopJoin { left, right, .. }
            | PhysicalPlan::HashJoin { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
            PhysicalPlan::IndexJoin { left, table, .. } => {
                left.collect_tables(out);
                out.push(table);
            }
            PhysicalPlan::Union { inputs } => {
                for input in inputs {
                    input.collect_tables(out);
                }
            }
        }
    }

    fn explain_into(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::SeqScan {
                table,
                predicate,
                projection,
            } => {
                write!(f, "{pad}SeqScan {table}")?;
                if let Some(p) = predicate {
                    write!(f, " filter={p:?}")?;
                }
                if let Some(cols) = projection {
                    write!(f, " project={cols:?}")?;
                }
                writeln!(f)
            }
            PhysicalPlan::IndexScan {
                table, column, key, ..
            } => {
                writeln!(f, "{pad}IndexScan {table}.{column} key={key:?}")
            }
            PhysicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter {predicate:?}")?;
                input.explain_into(f, depth + 1)
            }
            PhysicalPlan::Project { input, columns } => {
                writeln!(f, "{pad}Project {columns:?}")?;
                input.explain_into(f, depth + 1)
            }
            PhysicalPlan::NestedLoopJoin {
                left,
                right,
                predicate,
            } => {
                writeln!(f, "{pad}NestedLoopJoin pred={predicate:?}")?;
                left.explain_into(f, depth + 1)?;
                right.explain_into(f, depth + 1)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
            } => {
                writeln!(f, "{pad}HashJoin l={left_keys:?} r={right_keys:?}")?;
                left.explain_into(f, depth + 1)?;
                right.explain_into(f, depth + 1)
            }
            PhysicalPlan::IndexJoin {
                left,
                table,
                column,
                left_key,
                ..
            } => {
                writeln!(f, "{pad}IndexJoin {table}.{column} probe=col{left_key}")?;
                left.explain_into(f, depth + 1)
            }
            PhysicalPlan::Union { inputs } => {
                writeln!(f, "{pad}Union")?;
                for input in inputs {
                    input.explain_into(f, depth + 1)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.explain_into(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    #[test]
    fn tables_walks_the_tree() {
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::scan("Show")),
            right: Box::new(PhysicalPlan::Union {
                inputs: vec![PhysicalPlan::scan("Review"), PhysicalPlan::scan("Episode")],
            }),
            left_keys: vec![0],
            right_keys: vec![2],
        };
        assert_eq!(plan.tables(), ["Show", "Review", "Episode"]);
    }

    #[test]
    fn display_renders_a_tree() {
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::scan("Show")),
            predicate: Expr::cmp(CmpOp::Eq, 3, 1999i64),
        };
        let text = plan.to_string();
        assert!(text.contains("Filter"));
        assert!(text.contains("SeqScan Show"));
    }
}
