//! Errors for catalog, storage, and execution.

use std::fmt;

/// An error from the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist in the named table.
    UnknownColumn { table: String, column: String },
    /// A row's arity does not match the table definition.
    ArityMismatch {
        table: String,
        expected: usize,
        got: usize,
    },
    /// A value does not inhabit the declared column type.
    TypeMismatch {
        table: String,
        column: String,
        value: String,
    },
    /// NULL inserted into a NOT NULL column.
    NullViolation { table: String, column: String },
    /// A table with this name already exists.
    DuplicateTable(String),
    /// An expression referenced a column index beyond the row width.
    ColumnOutOfRange { index: usize, width: usize },
    /// A plan was malformed (e.g. join keys of different lengths).
    BadPlan(String),
    /// An I/O failure on the durability path. Carries the operation that
    /// failed and the rendered OS error (kept as a `String` so the error
    /// type stays `Clone + PartialEq + Eq`).
    Io { context: String, message: String },
    /// Durable state that passed its checksum but failed to decode — a
    /// software bug or out-of-band corruption, never silently dropped.
    Corrupt { context: String },
    /// A durable operation was attempted on a WAL that already observed a
    /// write failure; the log contents past that point are unknown, so
    /// further appends are refused until the database is reopened.
    WalPoisoned,
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::UnknownTable(t) => write!(f, "unknown table {t}"),
            RelationalError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            RelationalError::ArityMismatch {
                table,
                expected,
                got,
            } => {
                write!(f, "table {table} expects {expected} columns, row has {got}")
            }
            RelationalError::TypeMismatch {
                table,
                column,
                value,
            } => {
                write!(f, "value {value} does not fit column {table}.{column}")
            }
            RelationalError::NullViolation { table, column } => {
                write!(f, "NULL in NOT NULL column {table}.{column}")
            }
            RelationalError::DuplicateTable(t) => write!(f, "table {t} already exists"),
            RelationalError::ColumnOutOfRange { index, width } => {
                write!(
                    f,
                    "column index {index} out of range for row of width {width}"
                )
            }
            RelationalError::BadPlan(msg) => write!(f, "malformed plan: {msg}"),
            RelationalError::Io { context, message } => {
                write!(f, "i/o failure during {context}: {message}")
            }
            RelationalError::Corrupt { context } => {
                write!(f, "corrupt durable state: {context}")
            }
            RelationalError::WalPoisoned => {
                write!(
                    f,
                    "write-ahead log poisoned by an earlier write failure; reopen the database"
                )
            }
        }
    }
}

impl std::error::Error for RelationalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationalError::UnknownColumn {
            table: "Show".into(),
            column: "year".into(),
        };
        assert!(e.to_string().contains("Show.year"));
        let e = RelationalError::ArityMismatch {
            table: "T".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains('3'));
    }
}
