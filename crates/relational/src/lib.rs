//! # legodb-relational
//!
//! The relational substrate LegoDB maps XML into. The paper targeted a
//! commercial RDBMS (validated against Microsoft SQL Server 6.5); this crate
//! provides the equivalent moving parts, built from scratch:
//!
//! - a typed **catalog** ([`catalog::Catalog`]) with per-table and
//!   per-column statistics — the interface the cost-based optimizer reads;
//! - **values and expressions** ([`types::Value`], [`expr::Expr`]) for
//!   predicates and projections;
//! - an in-memory **storage engine** ([`storage::Database`]) whose tables
//!   are layout-polymorphic ([`catalog::Layout`]): a row heap or a column
//!   store ([`column::ColumnStore`]), both with B-tree (ordered)
//!   secondary indexes;
//! - **physical plans** ([`plan::PhysicalPlan`]) and a pull-based
//!   **executor** ([`exec`]) that runs them while counting tuples and pages
//!   touched, so optimizer estimates can be checked against observed work
//!   (the analogue of the paper's ±10% SQL Server validation).
//!
//! Page geometry is fixed at [`PAGE_SIZE`] bytes; table width is derived
//! from column statistics, matching how the cost model reasons.
//!
//! Durability is provided by a write-ahead log ([`wal::Wal`]) plus a
//! checkpoint/restore path on [`storage::Database`] (`open`, `checkpoint`,
//! `commit`): see DESIGN.md §14. All filesystem access flows through the
//! [`legodb_util::fs::DirHandle`] capability handle.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod column;
pub mod error;
pub mod exec;
pub mod expr;
pub mod plan;
pub mod storage;
pub mod types;
pub mod wal;

pub use catalog::{Catalog, ColumnDef, ColumnStats, ForeignKey, Layout, TableDef, TableStats};
pub use column::{ColumnData, ColumnStore, ColumnVector};
pub use error::RelationalError;
pub use exec::{run, ExecCounters};
pub use expr::{CmpOp, Expr};
pub use plan::PhysicalPlan;
pub use storage::{Database, Row, StorageStats, Table};
pub use types::{SqlType, Value};
pub use wal::{Wal, WalRecord};

/// Page size used for both cost estimation and executor accounting (bytes).
pub const PAGE_SIZE: f64 = 8192.0;

/// Per-row storage overhead (header + slot entry), in bytes.
pub const ROW_OVERHEAD: f64 = 16.0;
