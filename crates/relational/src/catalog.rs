//! The relational catalog: table and column definitions plus the statistics
//! the cost-based optimizer consumes.
//!
//! In the LegoDB pipeline the catalog is *generated* — `rel(ps)` maps each
//! named type of a physical schema to a [`TableDef`] and translates the
//! XML data statistics into [`TableStats`]/[`ColumnStats`]. The catalog can
//! also render itself as `CREATE TABLE` DDL, which is what a user would
//! feed to a real RDBMS.

use crate::types::SqlType;
use crate::{PAGE_SIZE, ROW_OVERHEAD};
use std::collections::BTreeMap;
use std::fmt;

/// Physical storage layout of one table.
///
/// The paper's search space is purely *logical* (which types become which
/// tables); `Layout` extends it with a *physical* dimension priced by the
/// same cost model. A row-store table is the classic heap: whole rows,
/// contiguous. A columnar table stores one typed vector per column plus a
/// null bitmap, so a scan that touches `k` of `n` columns reads only the
/// bytes of those `k` columns — and pays a per-row reassembly penalty on
/// random access.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layout {
    /// Row heap (the default; what the paper assumes throughout).
    #[default]
    Row,
    /// One typed vector per column + null bitmap.
    Columnar,
}

impl Layout {
    /// Parse the serialized name (see [`std::fmt::Display`]).
    pub fn parse(s: &str) -> Option<Layout> {
        match s {
            "row" => Some(Layout::Row),
            "columnar" => Some(Layout::Columnar),
            _ => None,
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layout::Row => "row",
            Layout::Columnar => "columnar",
        })
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Average width in bytes of non-null values.
    pub avg_width: f64,
    /// Number of distinct values, if known.
    pub distinct: Option<f64>,
    /// Minimum value for numeric columns.
    pub min: Option<i64>,
    /// Maximum value for numeric columns.
    pub max: Option<i64>,
    /// Fraction of rows where this column is NULL (0.0–1.0).
    pub null_fraction: f64,
}

impl ColumnStats {
    /// Unknown statistics with a default width taken from the type.
    pub fn unknown(ty: SqlType) -> ColumnStats {
        ColumnStats {
            avg_width: ty.default_width(),
            distinct: None,
            min: None,
            max: None,
            null_fraction: 0.0,
        }
    }
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared SQL type.
    pub ty: SqlType,
    /// May this column hold NULL? (The paper's optional types map to
    /// nullable columns.)
    pub nullable: bool,
    /// Optimizer statistics.
    pub stats: ColumnStats,
}

impl ColumnDef {
    /// A NOT NULL column with default (unknown) statistics.
    pub fn new(name: impl Into<String>, ty: SqlType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
            stats: ColumnStats::unknown(ty),
        }
    }

    /// Builder-style: mark nullable.
    pub fn nullable(mut self) -> ColumnDef {
        self.nullable = true;
        self
    }

    /// Builder-style: attach statistics.
    pub fn with_stats(mut self, stats: ColumnStats) -> ColumnDef {
        self.stats = stats;
        self
    }
}

/// A foreign-key edge: `column` of this table references `parent_table`'s
/// key. Generated from the parent-type relationships of the p-schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in this table (e.g. `parent_Show`).
    pub column: String,
    /// Referenced table (e.g. `Show`).
    pub parent_table: String,
}

/// Table-level statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Estimated row count.
    pub rows: f64,
}

impl Default for TableStats {
    fn default() -> Self {
        TableStats { rows: 0.0 }
    }
}

/// A table definition: columns, key, foreign keys, statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDef {
    /// Table name (the type name from the p-schema).
    pub name: String,
    /// Columns in definition order; the first is the id/key column in
    /// generated schemas.
    pub columns: Vec<ColumnDef>,
    /// Name of the key column, if any.
    pub key: Option<String>,
    /// Foreign-key edges to parent tables.
    pub foreign_keys: Vec<ForeignKey>,
    /// Table statistics.
    pub stats: TableStats,
    /// Physical storage layout (row heap vs column store).
    pub layout: Layout,
}

impl TableDef {
    /// A table with no columns yet.
    pub fn new(name: impl Into<String>) -> TableDef {
        TableDef {
            name: name.into(),
            columns: Vec::new(),
            key: None,
            foreign_keys: Vec::new(),
            stats: TableStats::default(),
            layout: Layout::Row,
        }
    }

    /// Builder-style: set the physical layout.
    pub fn with_layout(mut self, layout: Layout) -> TableDef {
        self.layout = layout;
        self
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Average row width in bytes (column widths + row overhead), the
    /// quantity both the executor and the cost model use for page math.
    pub fn row_width(&self) -> f64 {
        ROW_OVERHEAD
            + self
                .columns
                .iter()
                .map(|c| c.stats.avg_width * (1.0 - c.stats.null_fraction) + c.stats.null_fraction)
                .sum::<f64>()
    }

    /// Number of pages the table occupies.
    pub fn pages(&self) -> f64 {
        (self.stats.rows * self.row_width() / PAGE_SIZE).max(1.0)
    }

    /// Effective stored width in bytes of column `i`: non-null values at
    /// their average width, nulls at one bitmap-adjacent byte. This is the
    /// per-column share of [`TableDef::row_width`] minus the row overhead,
    /// which a column store pays per *referenced* column instead of per
    /// row.
    pub fn column_width(&self, i: usize) -> f64 {
        self.columns.get(i).map_or(0.0, |c| {
            c.stats.avg_width * (1.0 - c.stats.null_fraction) + c.stats.null_fraction
        })
    }

    /// Pages a columnar scan reads when it touches only `cols` (all
    /// columns when `None`). Column vectors are densely packed, so there
    /// is no per-row overhead — the whole point of the layout.
    pub fn columnar_scan_pages(&self, cols: Option<&[usize]>) -> f64 {
        let width: f64 = match cols {
            Some(cols) => cols.iter().map(|&i| self.column_width(i)).sum(),
            None => (0..self.columns.len()).map(|i| self.column_width(i)).sum(),
        };
        (self.stats.rows * width / PAGE_SIZE).max(1.0)
    }

    /// Render as a `CREATE TABLE` statement.
    pub fn to_ddl(&self) -> String {
        let mut lines = Vec::new();
        for c in &self.columns {
            let mut line = format!("  {} {}", c.name, c.ty);
            if !c.nullable {
                line.push_str(" NOT NULL");
            }
            if self.key.as_deref() == Some(&c.name) {
                line.push_str(" PRIMARY KEY");
            }
            lines.push(line);
        }
        for fk in &self.foreign_keys {
            lines.push(format!(
                "  FOREIGN KEY ({}) REFERENCES {}",
                fk.column, fk.parent_table
            ));
        }
        format!("CREATE TABLE {} (\n{}\n);", self.name, lines.join(",\n"))
    }
}

/// The catalog: a named set of table definitions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    tables: BTreeMap<String, TableDef>,
    order: Vec<String>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Add a table (replaces any table of the same name).
    pub fn add(&mut self, table: TableDef) {
        if !self.tables.contains_key(&table.name) {
            self.order.push(table.name.clone());
        }
        self.tables.insert(table.name.clone(), table);
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.get(name)
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut TableDef> {
        self.tables.get_mut(name)
    }

    /// Tables in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &TableDef> {
        self.order.iter().filter_map(move |n| self.tables.get(n))
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Full DDL script for the catalog.
    pub fn to_ddl(&self) -> String {
        let mut out = String::new();
        for t in self.iter() {
            out.push_str(&t.to_ddl());
            out.push('\n');
        }
        out
    }

    /// Total data pages across all tables (a coarse size-of-database
    /// figure used in experiments).
    pub fn total_pages(&self) -> f64 {
        self.iter().map(TableDef::pages).sum()
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ddl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn show_table() -> TableDef {
        let mut t = TableDef::new("Show");
        t.columns = vec![
            ColumnDef::new("Show_id", SqlType::Int),
            ColumnDef::new("type", SqlType::Char(8)),
            ColumnDef::new("title", SqlType::Char(50)),
            ColumnDef::new("year", SqlType::Int).nullable(),
        ];
        t.key = Some("Show_id".into());
        t.stats.rows = 34798.0;
        t
    }

    #[test]
    fn column_lookup() {
        let t = show_table();
        assert_eq!(t.column_index("title"), Some(2));
        assert_eq!(t.column_index("missing"), None);
        assert!(t.column("year").unwrap().nullable);
    }

    #[test]
    fn row_width_sums_columns_plus_overhead() {
        let t = show_table();
        // 8 + 8 + 50 + 8 + overhead 16 = 90
        assert!((t.row_width() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn page_count_scales_with_rows() {
        let t = show_table();
        let pages = t.pages();
        assert!((pages - (34798.0 * 90.0 / 8192.0)).abs() < 1.0);
        let empty = TableDef::new("E");
        assert_eq!(empty.pages(), 1.0); // at least one page
    }

    #[test]
    fn ddl_contains_keys_and_fks() {
        let mut t = show_table();
        t.foreign_keys.push(ForeignKey {
            column: "parent_IMDB".into(),
            parent_table: "IMDB".into(),
        });
        let ddl = t.to_ddl();
        assert!(ddl.contains("CREATE TABLE Show"));
        assert!(ddl.contains("Show_id INT NOT NULL PRIMARY KEY"));
        assert!(ddl.contains("year INT,"));
        assert!(ddl.contains("FOREIGN KEY (parent_IMDB) REFERENCES IMDB"));
    }

    #[test]
    fn catalog_preserves_insertion_order() {
        let mut c = Catalog::new();
        c.add(show_table());
        c.add(TableDef::new("Aka"));
        let names: Vec<&str> = c.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["Show", "Aka"]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn adding_same_table_replaces() {
        let mut c = Catalog::new();
        c.add(show_table());
        let mut t2 = show_table();
        t2.stats.rows = 1.0;
        c.add(t2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("Show").unwrap().stats.rows, 1.0);
    }

    #[test]
    fn columnar_scan_pages_charges_only_referenced_columns() {
        let t = show_table();
        // title alone: 34798 rows * 50 bytes, no row overhead.
        let title_only = t.columnar_scan_pages(Some(&[2]));
        assert!((title_only - 34798.0 * 50.0 / 8192.0).abs() < 1e-6);
        // All columns (74 bytes) still beat the row heap (90 with overhead).
        let all = t.columnar_scan_pages(None);
        assert!(all < t.pages());
        assert!((all - 34798.0 * 74.0 / 8192.0).abs() < 1e-6);
        // Layout round-trips through parse/Display.
        for l in [Layout::Row, Layout::Columnar] {
            assert_eq!(Layout::parse(&l.to_string()), Some(l));
        }
        assert_eq!(Layout::parse("paged"), None);
        assert_eq!(TableDef::new("T").layout, Layout::Row);
        assert_eq!(
            TableDef::new("T").with_layout(Layout::Columnar).layout,
            Layout::Columnar
        );
    }

    #[test]
    fn null_fraction_discounts_width() {
        let mut t = TableDef::new("T");
        let mut stats = ColumnStats::unknown(SqlType::Char(100));
        stats.null_fraction = 0.5;
        t.columns.push(
            ColumnDef::new("c", SqlType::Char(100))
                .nullable()
                .with_stats(stats),
        );
        // 16 overhead + 0.5*100 + 0.5*1 = 66.5
        assert!((t.row_width() - 66.5).abs() < 1e-9);
    }
}
