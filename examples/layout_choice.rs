//! Layout choice: let the greedy search assign each relation a physical
//! layout — row heap or column store — for a mixed IMDB workload, then
//! justify every decision by pricing the flipped alternative.
//!
//! The workload mixes the Appendix C point lookups (Q1–Q6: fetch one
//! show's tuple through an index) with analytic queries (Q11: scan the
//! cast for a character; Q15/Q17: publish the actor and director
//! subtrees). Under the all-filtered index assumption the lookups pay a
//! per-column reassembly penalty on a column store, while the scans pay
//! for every byte of a row heap — so the search lands on a mixed layout.
//!
//! Run with `cargo run --example layout_choice`.

use legodb_core::cost::pschema_cost;
use legodb_core::search::{greedy_search, SearchConfig, StartPoint};
use legodb_core::transform::TransformationSet;
use legodb_core::workload::Workload;
use legodb_imdb::{imdb_schema, query, scaled_statistics};
use legodb_optimizer::{IndexAssumption, OptimizerConfig};
use legodb_relational::Layout;

fn main() {
    let schema = imdb_schema();
    let stats = scaled_statistics(1.0);
    let names = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q11", "Q15", "Q17"];
    let mut workload = Workload::new();
    for name in names {
        workload.push(name.to_string(), query(name), 1.0 / names.len() as f64);
    }

    let optimizer = OptimizerConfig {
        indexes: IndexAssumption::AllFiltered,
        ..OptimizerConfig::default()
    };
    let config = SearchConfig {
        start: StartPoint::MaximallyInlined,
        transformations: Some(TransformationSet::layouts_only()),
        optimizer,
        parallel: true,
        ..SearchConfig::default()
    };
    let result = greedy_search(&schema, &stats, &workload, &config).expect("search succeeds");
    let start_cost = result
        .trajectory
        .first()
        .map(|r| r.cost)
        .unwrap_or(result.cost);

    println!("=== mixed-layout greedy search (lookups Q1-Q6 + analytics Q11/Q15/Q17)");
    println!(
        "all-row start cost {start_cost:.2} -> mixed-layout cost {:.2} \
         ({} set-layout move(s))\n",
        result.cost,
        result.trajectory.len() - 1,
    );

    // Justify each decision: price the same configuration with that one
    // table's layout flipped. A positive delta means the flip would make
    // the workload more expensive — the chosen layout earns its place.
    println!(
        "{:<12} {:>9} {:>14} {:>10}",
        "table", "layout", "cost if flipped", "delta"
    );
    let table_names: Vec<_> = result
        .pschema
        .schema()
        .iter()
        .map(|(name, _)| name.clone())
        .collect();
    for name in table_names {
        let chosen = result.pschema.layout(&name);
        let mut flipped = result.pschema.clone();
        flipped.set_layout(
            &name,
            match chosen {
                Layout::Row => Layout::Columnar,
                Layout::Columnar => Layout::Row,
            },
        );
        let flipped_cost = pschema_cost(&flipped, &stats, &workload, &optimizer)
            .map(|r| r.total)
            .unwrap_or(f64::INFINITY);
        let delta = flipped_cost - result.cost;
        let verdict = if delta > 0.0 {
            "keep"
        } else if delta < 0.0 {
            "MISSED"
        } else {
            "tie"
        };
        println!(
            "{:<12} {:>9} {:>14.2} {:>+10.2}  {verdict}",
            name.to_string(),
            chosen.to_string(),
            flipped_cost,
            delta,
        );
    }
    println!(
        "\nLookup-probed tables stay on the row heap (flipping them adds the \
         per-column reassembly cost); scan-dominated tables move to the \
         column store (flipping them back re-reads every byte per scan)."
    );
}
