//! The paper's W1 scenario (§2): a cable company that routinely publishes
//! large parts of the IMDB for download — a publishing-heavy workload.
//! Shows how the chosen configuration differs from the lookup-tuned one.
//!
//! Run with `cargo run --release --example publish_catalog`.

use legodb_core::search::{SearchConfig, StartPoint};
use legodb_core::LegoDb;
use legodb_imdb::{imdb_schema, scaled_statistics, workload_w1, workload_w2};

fn main() {
    let stats = scaled_statistics(0.1); // 1/10-scale IMDB
    let engine =
        LegoDb::new(imdb_schema(), stats, workload_w1()).with_search_config(SearchConfig {
            start: StartPoint::MaximallyInlined,
            parallel: true,
            ..Default::default()
        });

    println!("searching a configuration for W1 (publishing-heavy: 0.4/0.4/0.1/0.1)...");
    let publish_tuned = engine.optimize().expect("search succeeds");
    println!(
        "W1-tuned cost {:.2} after {} iterations",
        publish_tuned.cost,
        publish_tuned.trajectory.len() - 1
    );
    println!("\nchosen schema:\n{}", publish_tuned.pschema.schema());

    // Price the same configuration under the interactive W2 mix, and
    // vice versa — the paper's point: one size does not fit all.
    let w2_engine = engine.clone().with_workload(workload_w2());
    let lookup_tuned = w2_engine.optimize().expect("search succeeds");
    let publish_under_w2 = w2_engine
        .cost_of(&publish_tuned.pschema)
        .expect("costing succeeds")
        .total;
    let lookup_under_w1 = engine
        .cost_of(&lookup_tuned.pschema)
        .expect("costing succeeds")
        .total;

    println!("=== cross-workload comparison");
    println!("                     under W1      under W2");
    println!(
        "W1-tuned config    {:10.2}    {:10.2}",
        publish_tuned.cost, publish_under_w2
    );
    println!(
        "W2-tuned config    {:10.2}    {:10.2}",
        lookup_under_w1, lookup_tuned.cost
    );
    println!("\nEach configuration should win (or tie) under its own workload.");
}
