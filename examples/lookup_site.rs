//! The paper's W2 scenario (§2): a movie-information web site serving
//! interactive lookup queries. Demonstrates the XML-only interface: the
//! site's queries stay XQuery; LegoDB produces the relational design and
//! the translated SQL.
//!
//! Run with `cargo run --release --example lookup_site`.

use legodb_core::search::{SearchConfig, StartPoint};
use legodb_core::LegoDb;
use legodb_imdb::{imdb_schema, lookup_workload, scaled_statistics};
use legodb_xquery::{parse_xquery, translate};

fn main() {
    let engine = LegoDb::new(imdb_schema(), scaled_statistics(0.1), lookup_workload())
        .with_search_config(SearchConfig {
            start: StartPoint::MaximallyOutlined,
            parallel: true,
            ..Default::default()
        });

    println!("searching a configuration for the lookup workload (Q8, Q9, Q11, Q12, Q13)...");
    let result = engine.optimize().expect("search succeeds");
    println!(
        "converged to cost {:.2} in {} iterations\n",
        result.cost,
        result.trajectory.len() - 1
    );
    println!("=== relational design\n{}", result.mapping.catalog.to_ddl());

    // Show the SQL a site query turns into under the chosen mapping.
    let site_query = parse_xquery(
        r#"FOR $v IN document("imdbdata")/imdb/show
           WHERE $v/title = c1
           RETURN $v/title, $v/year, $v/description"#,
    )
    .expect("query parses");
    let translated = translate(&result.mapping, &site_query).expect("query translates");
    println!(
        "=== 'show description by title' translates to\n{}",
        translated.to_sql()
    );
}
