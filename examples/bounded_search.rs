//! Bounded search: run the greedy search under resource budgets and
//! observe the best-so-far behavior, the search outcome, and the hard
//! parser limits that guard the front door.
//!
//! Run with `cargo run --example bounded_search`. Set
//! `LEGODB_FAULT_SEED` (and optionally `LEGODB_FAULT_RATE`,
//! `LEGODB_FAULT_MODE`) to also watch fault-isolated candidate drops.

use legodb_core::workload::Workload;
use legodb_core::{Budget, LegoDb};
use legodb_schema::parse_schema;
use legodb_xml::stats::Statistics;
use std::time::Duration;

fn engine() -> LegoDb {
    let schema = parse_schema(
        "type Catalog = catalog[ Product{0,*} ]
         type Product = product[ name[ String ], price[ Integer ],
                                 blurb[ String ], Tag{0,*} ]
         type Tag = tag[ String ]",
    )
    .expect("schema parses");
    let mut stats = Statistics::new();
    stats
        .set_count(&["catalog"], 1)
        .set_count(&["catalog", "product"], 50_000)
        .set_size(&["catalog", "product", "name"], 30.0)
        .set_distinct(&["catalog", "product", "name"], 50_000)
        .set_count(&["catalog", "product", "price"], 50_000)
        .set_base(&["catalog", "product", "price"], 1, 100_000, 10_000)
        .set_count(&["catalog", "product", "blurb"], 50_000)
        .set_size(&["catalog", "product", "blurb"], 1_500.0)
        .set_count(&["catalog", "product", "tag"], 120_000)
        .set_size(&["catalog", "product", "tag"], 12.0);
    let workload = Workload::from_sources([(
        "price-lookup",
        r#"FOR $p IN document("catalog")/catalog/product
           WHERE $p/name = c1
           RETURN $p/price"#,
        1.0,
    )])
    .expect("workload parses");
    LegoDb::new(schema, stats, workload)
}

fn main() {
    // Budgets bound the search; exhaustion returns best-so-far, not Err.
    let budgets = [
        ("unlimited", Budget::none()),
        ("deadline 0ms", Budget::none().with_deadline(Duration::ZERO)),
        ("3 evaluations", Budget::none().with_max_evaluations(3)),
        (
            "64 KiB estimate",
            Budget::none().with_max_memory_bytes(64 << 10),
        ),
    ];
    println!("=== search under budgets");
    for (label, budget) in budgets {
        let result = engine()
            .with_budget(budget)
            .optimize()
            .expect("budgeted search still returns best-so-far");
        println!(
            "  {label:16} -> outcome {:?}, cost {:10.2}, {} iterations, {} tables, {} dropped",
            result.outcome,
            result.cost,
            result.trajectory.len(),
            result.mapping.catalog.len(),
            result.dropped_candidates,
        );
    }

    // The parsers refuse pathological inputs with structured errors
    // instead of overflowing the stack.
    println!("\n=== parser hard limits");
    let depth = 10_000;
    let bomb = "<a>".repeat(depth) + &"</a>".repeat(depth);
    match legodb_xml::parse(&bomb) {
        Ok(_) => println!("  10k-deep document: unexpectedly parsed"),
        Err(e) => println!("  10k-deep document: {e}"),
    }
    let flood = format!("<a>{}</a>", "&#65;".repeat(2_000_000));
    match legodb_xml::parse(&flood) {
        Ok(_) => println!("  2M entity flood: unexpectedly parsed"),
        Err(e) => println!("  2M entity flood: {e}"),
    }
    let deep_query = format!("{}$v", "FOR $v IN document(\"x\")/a RETURN ".repeat(10_000));
    match legodb_xquery::parse_xquery(&deep_query) {
        Ok(_) => println!("  10k-deep query: unexpectedly parsed"),
        Err(e) => println!("  10k-deep query: {e}"),
    }
}
