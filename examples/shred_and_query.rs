//! End-to-end: generate synthetic IMDB data, pick a mapping, shred the
//! document into the relational engine, run a translated query through the
//! executor, and publish a subtree back to XML.
//!
//! Run with `cargo run --release --example shred_and_query`.

use legodb_core::workload::Workload;
use legodb_core::LegoDb;
use legodb_imdb::{generate_imdb, imdb_schema, ScaleConfig};
use legodb_optimizer::{optimize_statement, OptimizerConfig};
use legodb_pschema::publish::publish_instance;
use legodb_pschema::{rel, shred};
use legodb_relational::exec::run;
use legodb_schema::TypeName;
use legodb_util::StdRng;
use legodb_xml::stats::Statistics;
use legodb_xquery::{parse_xquery, translate};

fn main() {
    // 1. Synthesize a small IMDB dataset and harvest its statistics.
    let mut rng = StdRng::seed_from_u64(2002);
    let doc = generate_imdb(&mut rng, &ScaleConfig::at_scale(0.003));
    let stats = Statistics::collect(&doc);
    println!(
        "generated {} elements ({} shows)",
        doc.element_count(),
        stats.count(&["imdb", "show"]).unwrap_or(0)
    );

    // 2. Choose a mapping for a small mixed workload.
    let workload = Workload::from_sources([
        (
            "by-year",
            r#"FOR $v IN document("imdbdata")/imdb/show
               WHERE $v/year = 1999 RETURN $v/title"#,
            0.5,
        ),
        (
            "export",
            r#"FOR $v IN document("imdbdata")/imdb/show RETURN $v"#,
            0.5,
        ),
    ])
    .expect("workload parses");
    let engine = LegoDb::new(imdb_schema(), stats.clone(), workload);
    let chosen = engine.optimize().expect("search succeeds");
    println!(
        "chosen configuration has {} tables",
        chosen.mapping.catalog.len()
    );

    // 3. Shred the document into the relational engine.
    let mapping = rel(&chosen.pschema, &stats);
    let db = shred(&mapping, &doc).expect("document shreds");
    println!(
        "loaded {} rows across {} tables",
        db.total_rows(),
        mapping.catalog.len()
    );

    // 4. Run a query end to end: XQuery → SQL → physical plan → rows.
    let q = parse_xquery(
        r#"FOR $v IN document("imdbdata")/imdb/show
           WHERE $v/year = 1999
           RETURN $v/title, $v/year"#,
    )
    .expect("query parses");
    let translated = translate(&mapping, &q).expect("query translates");
    println!("\nSQL:\n{}", translated.to_sql());
    for statement in &translated.statements {
        let optimized =
            optimize_statement(&mapping.catalog, statement, &OptimizerConfig::default())
                .expect("statement optimizes");
        let (rows, counters) = run(&db, &optimized.plan).expect("plan executes");
        println!(
            "\nestimated {:.0} rows / measured {} rows, {:.1} pages read",
            optimized.rows,
            rows.len(),
            counters.pages_read
        );
        for row in rows.iter().take(5) {
            println!("  {row:?}");
        }
    }

    // 5. Publish a show subtree back to XML.
    let show_table = db.table("Show").expect("Show table exists");
    if let Some(first) = show_table.scan().first() {
        let element = publish_instance(&mapping, &db, &TypeName::new("Show"), first)
            .expect("publishing succeeds")
            .expect("an element");
        println!("\nfirst show, republished as XML:\n{}", element.to_xml());
    }
}
