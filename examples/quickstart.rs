//! Quickstart: define a schema, statistics, and a workload; let LegoDB
//! pick a relational configuration; print the DDL and the search
//! trajectory.
//!
//! Run with `cargo run --example quickstart`.

use legodb_core::workload::Workload;
use legodb_core::LegoDb;
use legodb_schema::parse_schema;
use legodb_xml::stats::Statistics;

fn main() {
    // 1. The application's XML Schema, in the type-algebra notation.
    let schema = parse_schema(
        "type Catalog = catalog[ Product{0,*} ]
         type Product = product[ name[ String ], price[ Integer ],
                                 blurb[ String ], Tag{0,*} ]
         type Tag = tag[ String ]",
    )
    .expect("schema parses");

    // 2. Data statistics — normally harvested from a sample document with
    //    `Statistics::collect`, stated directly here.
    let mut stats = Statistics::new();
    stats
        .set_count(&["catalog"], 1)
        .set_count(&["catalog", "product"], 50_000)
        .set_size(&["catalog", "product", "name"], 30.0)
        .set_distinct(&["catalog", "product", "name"], 50_000)
        .set_count(&["catalog", "product", "price"], 50_000)
        .set_base(&["catalog", "product", "price"], 1, 100_000, 10_000)
        .set_count(&["catalog", "product", "blurb"], 50_000)
        .set_size(&["catalog", "product", "blurb"], 1_500.0)
        .set_count(&["catalog", "product", "tag"], 120_000)
        .set_size(&["catalog", "product", "tag"], 12.0);

    // 3. The query workload, weighted by importance.
    let workload = Workload::from_sources([
        (
            "price-lookup",
            r#"FOR $p IN document("catalog")/catalog/product
               WHERE $p/name = c1
               RETURN $p/price"#,
            0.8,
        ),
        (
            "export-all",
            r#"FOR $p IN document("catalog")/catalog/product RETURN $p"#,
            0.2,
        ),
    ])
    .expect("workload parses");

    // 4. Search for the best storage mapping.
    let engine = LegoDb::new(schema, stats, workload);
    let result = engine.optimize().expect("search succeeds");

    println!("=== greedy trajectory");
    for step in &result.trajectory {
        println!(
            "  iteration {:2}: cost {:10.2}  {}",
            step.iteration,
            step.cost,
            step.applied
                .as_deref()
                .unwrap_or("(initial all-inlined configuration)")
        );
    }
    println!("\n=== chosen physical schema\n{}", result.pschema.schema());
    println!(
        "=== generated relational schema\n{}",
        result.mapping.catalog.to_ddl()
    );
    println!("=== per-query estimated costs");
    for (name, cost) in &result.per_query {
        println!("  {name}: {cost:.2}");
    }
}
