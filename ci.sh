#!/usr/bin/env bash
# The offline CI gate: everything here must pass with no network access.
# Run locally before pushing; .github/workflows/ci.yml runs the same
# script. The workspace has zero external dependencies (see crates/util),
# so --offline is a hard requirement, not an optimization.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

# Clippy ships with rustup toolchains but not every minimal container;
# soft-fail only when the component itself is absent.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline -- -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint step"
fi

echo "CI gate passed."
