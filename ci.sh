#!/usr/bin/env bash
# The offline CI gate: everything here must pass with no network access.
# Run locally before pushing; .github/workflows/ci.yml runs the same
# script. The workspace has zero external dependencies (see crates/util),
# so --offline is a hard requirement, not an optimization.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

# Fault-injection pass: LEGODB_FAULT_SEED activates the deterministic
# failpoints (crates/util/src/fault.rs); candidate evaluations fail or
# panic for a fixed fraction of (site, key) pairs and the suite must
# still pass — proving the fault-isolation layer contains them.
echo "==> fault-injection test pass (LEGODB_FAULT_SEED=1)"
LEGODB_FAULT_SEED=1 cargo test -q --offline --workspace

# Hardened pass: optimized code with debug assertions and integer
# overflow checks re-enabled, in a separate target dir so the plain
# release cache stays valid.
echo "==> hardened test pass (release + debug-assertions + overflow-checks)"
RUSTFLAGS="-C debug-assertions=on -C overflow-checks=on" \
CARGO_TARGET_DIR=target/hardened \
cargo test -q --offline --workspace --release

# Clippy ships with rustup toolchains but not every minimal container;
# soft-fail only when the component itself is absent.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline -- -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint step"
fi

echo "CI gate passed."
