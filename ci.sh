#!/usr/bin/env bash
# The offline CI gate: everything here must pass with no network access.
# Run locally before pushing; .github/workflows/ci.yml runs the same
# script, one stage per matrix job. The workspace has zero external
# dependencies (see crates/util), so --offline is a hard requirement,
# not an optimization.
#
# Usage: ./ci.sh [stage...]
#   fmt       rustfmt check
#   lint      legodb-lint static analysis gate (+ clippy when available)
#   test      plain workspace test pass
#   fault     fault-injection test pass (LEGODB_FAULT_SEED=1)
#   recovery  seeded crash-recovery property across 16 seed streams
#   hardened  release tests with debug-assertions + overflow-checks
#   bench     experiment benches + bench-gate thresholds
#   ingest    streaming-ingest bench + gates
#   layout    physical-layout bench + gates
#   all       every stage above, in order (the default)
#
# Gate artifacts (lint report, bench records) are collected under
# target/ci/ so the workflow can upload them from one place.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true
ARTIFACTS=target/ci
mkdir -p "$ARTIFACTS"

build_release() {
    echo "==> cargo build --release --offline"
    cargo build --release --offline --workspace
}

stage_fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --check
}

# Static analysis gate (DESIGN.md §12 + §17): the workspace must lint
# clean before anything else runs — per-file rules, the flow-aware
# concurrency/durability rules (lock-order, wal-before-apply,
# guard-across-fsync), and the allow-unused audit (a stale
# `lint: allow` is itself a diagnostic, so the suppression count can
# only shrink). Exit is non-zero on any diagnostic; the JSON-lines
# report is left in target/ci/ for tooling.
stage_lint() {
    build_release
    echo "==> legodb-lint (static analysis gate)"
    cargo run --release --offline -q -p legodb-lint -- \
        --json "$ARTIFACTS/LINT_report.jsonl"

    # Clippy ships with rustup toolchains but not every minimal
    # container; soft-fail only when the component itself is absent.
    if cargo clippy --version >/dev/null 2>&1; then
        echo "==> cargo clippy --offline -- -D warnings"
        cargo clippy --offline --workspace --all-targets -- -D warnings
    else
        echo "==> cargo clippy unavailable; skipping lint step"
    fi
}

stage_test() {
    build_release
    echo "==> cargo test -q --offline"
    cargo test -q --offline --workspace
}

# Fault-injection pass: LEGODB_FAULT_SEED activates the deterministic
# failpoints (crates/util/src/fault.rs); candidate evaluations fail or
# panic for a fixed fraction of (site, key) pairs and the suite must
# still pass — proving the fault-isolation layer contains them. The
# incremental-costing equivalence property (DESIGN.md §11) is re-run
# explicitly so the guarantee stays visible even if the suite's test
# layout changes.
stage_fault() {
    echo "==> fault-injection test pass (LEGODB_FAULT_SEED=1)"
    LEGODB_FAULT_SEED=1 cargo test -q --offline --workspace
    echo "==> incremental-costing equivalence property (fault)"
    LEGODB_FAULT_SEED=1 cargo test -q --offline \
        --test properties incremental_costing_matches_the_oracle
    # One crash-recovery property seed with the runtime lock-order
    # sanitizer (crates/util/src/lockcheck.rs) forced on: faults drive
    # the durable engine down its rarest lock paths, and the tracker
    # panics on any acquisition-order cycle the static analyzer missed.
    echo "==> crash-recovery property with the lock-order sanitizer forced on"
    LEGODB_LOCK_ORDER=1 LEGODB_FAULT_SEED=1 LEGODB_PROP_SEED=1 \
        cargo test -q --offline --test robustness crash_recovery
}

# Crash-recovery pass (DESIGN.md §14): the seeded crash-recovery
# property re-runs across independent LEGODB_PROP_SEED streams with the
# env failpoints armed, so each stream draws different (fault seed, row
# count) cases and crashes the durable engine at different WAL and
# checkpoint sites. The property asserts the reopened database is a
# prefix of the operation sequence containing every acknowledged commit,
# with no partial rows and byte-identical double opens. Per-stream
# outcomes land in target/ci/RECOVERY_report.txt.
stage_recovery() {
    build_release
    local streams="${LEGODB_RECOVERY_SEEDS:-16}"
    echo "==> crash-recovery property across $streams seed streams"
    : > "$ARTIFACTS/RECOVERY_report.txt"
    for seed in $(seq 1 "$streams"); do
        LEGODB_FAULT_SEED=1 LEGODB_PROP_SEED="$seed" \
            cargo test -q --offline --test robustness crash_recovery
        echo "seed stream $seed: ok" >> "$ARTIFACTS/RECOVERY_report.txt"
    done
    echo "    all $streams seed streams recovered consistently"
}

# Hardened pass: optimized code with debug assertions and integer
# overflow checks re-enabled, in a separate target dir so the plain
# release cache stays valid. The lint gate itself must build (and stay
# clean) under the hardened flags — the gate is only trustworthy if it
# survives its own CI. Debug assertions also arm the in-evaluator
# from-scratch costing oracle, so the equivalence property runs here
# too.
stage_hardened() {
    echo "==> hardened test pass (release + debug-assertions + overflow-checks)"
    RUSTFLAGS="-C debug-assertions=on -C overflow-checks=on" \
    CARGO_TARGET_DIR=target/hardened \
    cargo test -q --offline --workspace --release

    RUSTFLAGS="-C debug-assertions=on -C overflow-checks=on" \
    CARGO_TARGET_DIR=target/hardened \
    cargo run --release --offline -q -p legodb-lint

    echo "==> incremental-costing equivalence property (hardened)"
    RUSTFLAGS="-C debug-assertions=on -C overflow-checks=on" \
    CARGO_TARGET_DIR=target/hardened \
    cargo test -q --offline --release \
        --test properties incremental_costing_matches_the_oracle
}

# Bench gates, enforced by the bench-gate bin over the JSON-lines
# records in target/ci/BENCH_search.json:
#
#  - search_incremental: the memo machinery must actually engage — a
#    zero cache hit rate means footprint/fingerprint invalidation has
#    regressed to recosting everything.
#  - search_scale at 10× IMDB-equivalent size: all scheduling arms must
#    agree on the final cost bit-for-bit, and on multi-core machines the
#    work-stealing scheduler must beat fixed chunking on wall-clock.
#    (On a single core every arm degenerates to the same sequential
#    execution, so there is no speedup to measure — the equality gate
#    still runs.)
#  - recovery (DESIGN.md §14): a durable load + midway checkpoint +
#    reopen at 1× and 10× corpus scale must recover a byte-identical
#    database (replay_match == 1). Throughput numbers are archived but
#    not gated — wall clock on shared runners is too noisy.
stage_bench() {
    build_release
    echo "==> experiment benches (records in $ARTIFACTS/BENCH_search.json)"
    rm -f "$ARTIFACTS/BENCH_search.json"
    LEGODB_BENCH_JSON=$ARTIFACTS/BENCH_search.json \
        ./target/release/search_incremental >/dev/null
    LEGODB_BENCH_JSON=$ARTIFACTS/BENCH_search.json \
    LEGODB_SCALE_LIST="${LEGODB_SCALE_LIST:-1,10}" \
        ./target/release/search_scale >/dev/null

    echo "==> recovery bench (records in $ARTIFACTS/BENCH_recovery.json)"
    rm -f "$ARTIFACTS/BENCH_recovery.json"
    LEGODB_BENCH_JSON=$ARTIFACTS/BENCH_recovery.json \
    LEGODB_RECOVERY_SCALES="${LEGODB_RECOVERY_SCALES:-1,10}" \
        ./target/release/recovery >/dev/null

    echo "==> bench-gate thresholds"
    ./target/release/bench-gate "$ARTIFACTS/BENCH_search.json" \
        --where experiment=search_incremental --where memoize=on \
        --require 'hit_rate>0'
    ./target/release/bench-gate "$ARTIFACTS/BENCH_search.json" \
        --where experiment=search_incremental --where summary=1 \
        --require 'speedup>0'
    ./target/release/bench-gate "$ARTIFACTS/BENCH_search.json" \
        --where experiment=search_scale --where scale=10 --where summary=1 \
        --require 'cost_match==1'
    if [ "$(nproc 2>/dev/null || echo 1)" -ge 2 ]; then
        ./target/release/bench-gate "$ARTIFACTS/BENCH_search.json" \
            --where experiment=search_scale --where scale=10 --where summary=1 \
            --require 'steal_speedup_vs_chunked>1.0'
    else
        echo "    single core: skipping the work-stealing speedup gate"
    fi
    for scale in $(echo "${LEGODB_RECOVERY_SCALES:-1,10}" | tr ',' ' '); do
        ./target/release/bench-gate "$ARTIFACTS/BENCH_recovery.json" \
            --where experiment=recovery --where "scale=$scale" \
            --require 'replay_match==1'
    done
}

# Streaming-ingest gates (DESIGN.md §15), over BENCH_ingest.json:
#
#  - rows_match at every scale: the streaming shred must be bit-identical
#    to the DOM oracle — a throughput win that changes the database is a
#    correctness bug, not an optimisation.
#  - within_budget: the streaming path must actually stream (peak
#    resident elements under a tenth of the DOM node count).
#  - fsyncs_per_batch <= 1: batched appends group each batch into one
#    WAL frame with a single fsync.
#  - streaming_speedup > 1.0 at 10×: the event-pull path must beat the
#    DOM path. The headline target is 1.5×; the CI floor is looser
#    because wall clock on shared runners is noisy.
stage_ingest() {
    build_release
    echo "==> streaming ingest bench (records in $ARTIFACTS/BENCH_ingest.json)"
    rm -f "$ARTIFACTS/BENCH_ingest.json"
    LEGODB_BENCH_JSON=$ARTIFACTS/BENCH_ingest.json \
    LEGODB_INGEST_SCALES="${LEGODB_INGEST_SCALES:-1,10}" \
        ./target/release/ingest >/dev/null

    echo "==> ingest gates"
    for scale in $(echo "${LEGODB_INGEST_SCALES:-1,10}" | tr ',' ' '); do
        ./target/release/bench-gate "$ARTIFACTS/BENCH_ingest.json" \
            --where experiment=ingest --where "scale=$scale" \
            --require 'rows_match==1' \
            --require 'within_budget==1' \
            --require 'fsyncs_per_batch<=1'
    done
    ./target/release/bench-gate "$ARTIFACTS/BENCH_ingest.json" \
        --where experiment=ingest --where scale=10 \
        --require 'streaming_speedup>1.0'
}

# Physical-layout gates (DESIGN.md §16), over BENCH_layout.json:
#
#  - results_match at every scale: the all-row and mixed-layout builds
#    must answer Q1–Q18 (plus the analytic scan set) bit-identically —
#    layout is physical design, never semantics.
#  - agg_chose_columnar == 1: the greedy `set-layout` search must move at
#    least one table referenced by the analytic workload (Q11–Q18) to
#    the column store.
#  - lookup_columnar_tables == 0: the same search on the point-lookup
#    workload (Q1–Q6) must leave every table on the row heap — columnar
#    random access pays a per-column reassembly penalty.
#  - columnar_agg_speedup > 1.2 at 10×: narrow-projection analytic scans
#    must actually run faster on the column store. The headline number
#    is ~2×; the CI floor is looser for shared-runner noise.
stage_layout() {
    build_release
    echo "==> physical-layout bench (records in $ARTIFACTS/BENCH_layout.json)"
    rm -f "$ARTIFACTS/BENCH_layout.json"
    LEGODB_BENCH_JSON=$ARTIFACTS/BENCH_layout.json \
    LEGODB_LAYOUT_SCALES="${LEGODB_LAYOUT_SCALES:-1,10}" \
        ./target/release/layout_scale >/dev/null

    echo "==> layout gates"
    for scale in $(echo "${LEGODB_LAYOUT_SCALES:-1,10}" | tr ',' ' '); do
        ./target/release/bench-gate "$ARTIFACTS/BENCH_layout.json" \
            --where experiment=layout --where "scale=$scale" \
            --require 'results_match==1' \
            --require 'agg_chose_columnar==1' \
            --require 'lookup_columnar_tables==0'
    done
    ./target/release/bench-gate "$ARTIFACTS/BENCH_layout.json" \
        --where experiment=layout --where scale=10 \
        --require 'columnar_agg_speedup>1.2'
}

run_stage() {
    case "$1" in
        fmt) stage_fmt ;;
        lint) stage_lint ;;
        test) stage_test ;;
        fault) stage_fault ;;
        recovery) stage_recovery ;;
        hardened) stage_hardened ;;
        bench) stage_bench ;;
        ingest) stage_ingest ;;
        layout) stage_layout ;;
        all) stage_fmt; stage_lint; stage_test; stage_fault; stage_recovery; stage_hardened; stage_bench; stage_ingest; stage_layout ;;
        *)
            echo "ci.sh: unknown stage '$1' (stages: fmt lint test fault recovery hardened bench ingest layout all)" >&2
            exit 2
            ;;
    esac
}

if [ "$#" -eq 0 ]; then
    set -- all
fi
for stage in "$@"; do
    run_stage "$stage"
done

echo "CI gate passed ($*)."
