#!/usr/bin/env bash
# The offline CI gate: everything here must pass with no network access.
# Run locally before pushing; .github/workflows/ci.yml runs the same
# script. The workspace has zero external dependencies (see crates/util),
# so --offline is a hard requirement, not an optimization.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

# Static analysis gate (DESIGN.md §12): the workspace must lint clean
# before anything else runs. Exit is non-zero on any diagnostic; the
# JSON-lines report is left in target/ for tooling.
echo "==> legodb-lint (static analysis gate)"
cargo run --release --offline -q -p legodb-lint -- \
    --json target/LINT_report.jsonl

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

# Fault-injection pass: LEGODB_FAULT_SEED activates the deterministic
# failpoints (crates/util/src/fault.rs); candidate evaluations fail or
# panic for a fixed fraction of (site, key) pairs and the suite must
# still pass — proving the fault-isolation layer contains them.
echo "==> fault-injection test pass (LEGODB_FAULT_SEED=1)"
LEGODB_FAULT_SEED=1 cargo test -q --offline --workspace

# Hardened pass: optimized code with debug assertions and integer
# overflow checks re-enabled, in a separate target dir so the plain
# release cache stays valid.
echo "==> hardened test pass (release + debug-assertions + overflow-checks)"
RUSTFLAGS="-C debug-assertions=on -C overflow-checks=on" \
CARGO_TARGET_DIR=target/hardened \
cargo test -q --offline --workspace --release

# The lint gate itself must build (and stay clean) under the hardened
# flags — the gate is only trustworthy if it survives its own CI.
RUSTFLAGS="-C debug-assertions=on -C overflow-checks=on" \
CARGO_TARGET_DIR=target/hardened \
cargo run --release --offline -q -p legodb-lint

# The incremental-costing equivalence property (DESIGN.md §11) must hold
# under injected faults and under debug assertions (which arm the
# in-evaluator from-scratch oracle). The workspace passes above include
# it; these targeted runs keep the guarantee explicit even if the suite's
# test layout changes.
echo "==> incremental-costing equivalence property (fault + hardened)"
LEGODB_FAULT_SEED=1 cargo test -q --offline \
    --test properties incremental_costing_matches_the_oracle
RUSTFLAGS="-C debug-assertions=on -C overflow-checks=on" \
CARGO_TARGET_DIR=target/hardened \
cargo test -q --offline --release \
    --test properties incremental_costing_matches_the_oracle

# The search_incremental bench must show the memo machinery actually
# engaging: a zero cache hit rate means footprint/fingerprint
# invalidation has regressed to recosting everything.
echo "==> incremental-costing bench gate (nonzero cache hit rate)"
rm -f target/BENCH_search.json
LEGODB_BENCH_JSON=target/BENCH_search.json ./target/release/search_incremental >/dev/null
hit_rate=$(awk -F'"hit_rate":' '/"memoize":"on"/ {split($2, a, "[,}]"); print a[1]}' \
    target/BENCH_search.json)
speedup=$(awk -F'"speedup":' '/"speedup":/ {split($2, a, "[,}]"); print a[1]}' \
    target/BENCH_search.json)
echo "    hit_rate=${hit_rate:-missing} speedup=${speedup:-missing}x"
awk -v h="${hit_rate:-0}" 'BEGIN { exit (h > 0 ? 0 : 1) }' || {
    echo "search_incremental: cache hit rate is zero" >&2
    exit 1
}

# Clippy ships with rustup toolchains but not every minimal container;
# soft-fail only when the component itself is absent.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline -- -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint step"
fi

echo "CI gate passed."
